//! Synthetic collection generation.
//!
//! The paper's simulations use the TREC-1 collections WSJ, FR and DOE,
//! which are licensed and cannot ship with this repository. Every cost
//! formula of section 5 depends on a collection only through its statistics
//! `(N, K, T)` and the derived sizes, while the executable join algorithms
//! additionally care about the *skew* of term usage (which entries get
//! reused in HVNL's cache) — so we substitute synthetic collections with
//! matching statistics and a Zipfian term distribution, the standard
//! vocabulary model (Salton & McGill).
//!
//! [`SynthSpec::preset_scaled`] produces execution-scale versions of the
//! paper's collections: `N` and `T` are divided by the scale factor while
//! `K` is preserved, which keeps the average document size `S` and average
//! entry size `J` — the shape parameters of all three algorithms — intact.

use crate::document::Document;
use crate::store::Collection;
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;
use textjoin_common::{CollectionStats, DocId, Result, TermId};
use textjoin_storage::DiskSim;

/// A Zipfian sampler over ranks `start..n` with exponent `s`:
/// `P(rank r) ∝ 1 / (r+1)^s`, with the weights of the *global* ranking —
/// truncating the head does not promote a new dominant rank, it simply
/// removes the head's mass (the behaviour of stop-word removal).
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    start: usize,
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the cumulative table for ranks `0..n` with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        Self::new_range(0, n, s)
    }

    /// Builds the table for the truncated ranking `start..n`.
    ///
    /// # Panics
    /// Panics if the range is empty or `s < 0`.
    pub fn new_range(start: usize, n: usize, s: f64) -> Self {
        assert!(start < n, "Zipf sampler needs a non-empty domain");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n - start);
        let mut total = 0.0;
        for r in start..n {
            total += 1.0 / ((r + 1) as f64).powf(s);
            cumulative.push(total);
        }
        let norm = total;
        for c in &mut cumulative {
            *c /= norm;
        }
        Self { start, cumulative }
    }

    /// Number of ranks.
    pub fn domain(&self) -> usize {
        self.cumulative.len()
    }

    /// Samples a rank (a global rank in `start..n`).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random();
        self.start
            + self
                .cumulative
                .partition_point(|&c| c < u)
                .min(self.cumulative.len() - 1)
    }
}

/// How term usage is distributed across documents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Locality {
    /// Every document samples from the global Zipf distribution.
    Global,
    /// Documents are grouped into this many clusters laid out contiguously
    /// in storage order; each document draws most of its terms from its
    /// cluster's slice of the vocabulary. Section 5.4 predicts HVNL
    /// benefits from such clustering because close documents share terms
    /// and reuse cached inverted entries.
    Clustered(usize),
}

/// Specification of a synthetic collection.
#[derive(Clone, Debug)]
pub struct SynthSpec {
    /// `N` — number of documents.
    pub num_docs: u64,
    /// `K` — target average number of distinct terms per document.
    pub avg_terms_per_doc: f64,
    /// `T` — vocabulary size terms are drawn from.
    pub vocab_size: u64,
    /// Zipf exponent of the term distribution (1.0 is classic Zipf).
    pub zipf_exponent: f64,
    /// Mean of the (geometric) within-document occurrence count.
    pub mean_occurrences: f64,
    /// Term locality pattern.
    pub locality: Locality,
    /// Fraction of the top Zipf ranks to skip, mimicking stop-word
    /// removal: IR systems index documents *after* dropping the most
    /// frequent words, so no posting list approaches length `N`. Without
    /// this, the top Zipf terms appear in nearly every document and their
    /// entries dwarf the average `J` the cost models use. Default 0.01.
    pub stopword_fraction: f64,
    /// RNG seed, for reproducibility.
    pub seed: u64,
}

impl SynthSpec {
    /// A spec with sensible defaults for the given primary statistics.
    pub fn from_stats(stats: CollectionStats, seed: u64) -> Self {
        Self {
            num_docs: stats.num_docs,
            avg_terms_per_doc: stats.avg_terms_per_doc,
            vocab_size: stats.distinct_terms,
            zipf_exponent: 1.0,
            mean_occurrences: 1.5,
            locality: Locality::Global,
            stopword_fraction: 0.01,
            seed,
        }
    }

    /// An execution-scale version of a paper collection: `N` and `T`
    /// divided by `scale`, `K` kept, so `S` and `J` (document and entry
    /// shape) are preserved.
    pub fn preset_scaled(stats: CollectionStats, scale: u64, seed: u64) -> Self {
        assert!(scale >= 1);
        Self::from_stats(
            CollectionStats::new(
                (stats.num_docs / scale).max(1),
                stats.avg_terms_per_doc,
                (stats.distinct_terms / scale).max(1),
            ),
            seed,
        )
    }

    /// The group-5 derivation: documents reduced and enlarged by `factor`,
    /// total size constant.
    pub fn derive_scaled(&self, factor: u64) -> Self {
        assert!(factor >= 1);
        Self {
            num_docs: (self.num_docs / factor).max(1),
            avg_terms_per_doc: self.avg_terms_per_doc * factor as f64,
            ..self.clone()
        }
    }

    /// The nominal statistics of the spec (measured statistics of a
    /// generated collection will be close but not identical: small
    /// collections do not exhaust the vocabulary).
    pub fn nominal_stats(&self) -> CollectionStats {
        CollectionStats::new(self.num_docs, self.avg_terms_per_doc, self.vocab_size)
    }

    /// Generates the collection onto `disk` under `name`.
    pub fn generate(&self, disk: Arc<DiskSim>, name: &str) -> Result<Collection> {
        let docs = self.generate_docs();
        Collection::build(disk, name, docs)
    }

    /// Generates the documents only (for in-memory tests).
    pub fn generate_docs(&self) -> Vec<Document> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let vocab = self.vocab_size as usize;
        // Stop-word removal: the most frequent ranks never reach the
        // index. The truncated sampler keeps the global-rank weights, so no
        // new dominant head appears.
        let skip = ((vocab as f64 * self.stopword_fraction) as usize).min(vocab - 1);
        let zipf = ZipfSampler::new_range(skip, vocab, self.zipf_exponent);
        let occ_p = 1.0 / self.mean_occurrences.max(1.0);

        let mut docs = Vec::with_capacity(self.num_docs as usize);
        for doc_idx in 0..self.num_docs {
            let k = self.sample_doc_terms(&mut rng);
            let mut terms: HashSet<u32> = HashSet::with_capacity(k);
            let mut attempts = 0usize;
            while terms.len() < k && attempts < k * 20 {
                attempts += 1;
                let rank = zipf.sample(&mut rng);
                let term = self.place_term(rank, doc_idx, vocab, &mut rng);
                terms.insert(term as u32);
            }
            // Fallback for tiny vocabularies: fill with uniform picks.
            while terms.len() < k.min(vocab) {
                terms.insert(rng.random_range(0..vocab) as u32);
            }
            // Sort before assigning weights: HashSet iteration order is
            // nondeterministic and would break seed reproducibility.
            let mut terms: Vec<u32> = terms.into_iter().collect();
            terms.sort_unstable();
            let cells = terms.into_iter().map(|t| {
                let occurrences = 1 + sample_geometric(&mut rng, occ_p).min(u16::MAX as u64 - 1);
                (TermId::new(t), occurrences as u32)
            });
            docs.push(Document::from_term_counts(cells));
        }
        docs
    }

    /// Per-document distinct-term count: uniform in `[K/2, 3K/2]`, so the
    /// average matches `K`.
    fn sample_doc_terms(&self, rng: &mut impl Rng) -> usize {
        let k = self.avg_terms_per_doc.max(1.0);
        let lo = (k / 2.0).max(1.0) as usize;
        let hi = (k * 1.5).ceil() as usize;
        rng.random_range(lo..=hi.max(lo))
    }

    /// Maps a Zipf rank to a term id, applying the locality pattern.
    fn place_term(&self, rank: usize, doc_idx: u64, vocab: usize, rng: &mut impl Rng) -> usize {
        match self.locality {
            Locality::Global => rank,
            Locality::Clustered(clusters) => {
                let clusters = clusters.max(1);
                // 80% of draws come from the document's cluster slice.
                if rng.random::<f64>() < 0.8 {
                    let cluster = (doc_idx as usize * clusters / self.num_docs.max(1) as usize)
                        .min(clusters - 1);
                    let slice = (vocab / clusters).max(1);
                    let within = rank % slice;
                    (cluster * slice + within).min(vocab - 1)
                } else {
                    rank
                }
            }
        }
    }
}

/// Samples a geometric random variable with success probability `p`
/// (number of failures before the first success; mean `(1-p)/p`).
fn sample_geometric(rng: &mut impl Rng, p: f64) -> u64 {
    let p = p.clamp(1e-9, 1.0);
    let u: f64 = rng.random();
    if p >= 1.0 {
        return 0;
    }
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

/// Picks `n` distinct document ids from a collection of `num_docs`
/// documents, simulating a selection on a non-textual attribute (group 3).
/// The result is sorted so access order matches document-number order.
pub fn select_random_docs(num_docs: u64, n: u64, seed: u64) -> Vec<DocId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = n.min(num_docs);
    let mut chosen: HashSet<u32> = HashSet::with_capacity(n as usize);
    while (chosen.len() as u64) < n {
        chosen.insert(rng.random_range(0..num_docs) as u32);
    }
    let mut ids: Vec<DocId> = chosen.into_iter().map(DocId::new).collect();
    ids.sort();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_prefers_low_ranks() {
        let zipf = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut low = 0;
        let samples = 10_000;
        for _ in 0..samples {
            if zipf.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // Top-10 of 1000 ranks carries ~39% of the mass at s=1.
        assert!(low > samples / 4, "low-rank mass too small: {low}");
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let zipf = ZipfSampler::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 100];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < *min * 3, "uniform sampler too skewed: {min}..{max}");
    }

    #[test]
    fn generated_stats_track_spec() {
        let spec = SynthSpec {
            num_docs: 300,
            avg_terms_per_doc: 40.0,
            vocab_size: 2000,
            zipf_exponent: 1.0,
            mean_occurrences: 1.5,
            locality: Locality::Global,
            stopword_fraction: 0.01,
            seed: 42,
        };
        let docs = spec.generate_docs();
        assert_eq!(docs.len(), 300);
        let profile = crate::profile::CollectionProfile::from_docs(&docs);
        let k = profile.avg_terms_per_doc();
        assert!((k - 40.0).abs() < 5.0, "measured K = {k}");
        let t = profile.distinct_terms();
        assert!(t > 500 && t <= 2000, "measured T = {t}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = SynthSpec::from_stats(CollectionStats::new(20, 10.0, 100), 9);
        assert_eq!(spec.generate_docs(), spec.generate_docs());
        let other = SynthSpec { seed: 10, ..spec };
        assert_ne!(other.generate_docs(), spec.generate_docs());
    }

    #[test]
    fn preset_scaled_preserves_shape() {
        let spec = SynthSpec::preset_scaled(CollectionStats::wsj(), 100, 1);
        assert_eq!(spec.num_docs, 987);
        assert_eq!(spec.vocab_size, 1562);
        assert_eq!(spec.avg_terms_per_doc, 329.0);
        // S and J shapes are preserved.
        let nominal = spec.nominal_stats();
        let full = CollectionStats::wsj();
        assert!((nominal.avg_doc_pages(4096) - full.avg_doc_pages(4096)).abs() < 1e-9);
        assert!(
            (nominal.avg_entry_pages(4096) - full.avg_entry_pages(4096)).abs()
                / full.avg_entry_pages(4096)
                < 0.02
        );
    }

    #[test]
    fn derive_scaled_shrinks_docs_enlarges_terms() {
        let spec = SynthSpec::from_stats(CollectionStats::new(1000, 50.0, 5000), 1);
        let derived = spec.derive_scaled(10);
        assert_eq!(derived.num_docs, 100);
        assert_eq!(derived.avg_terms_per_doc, 500.0);
        assert_eq!(derived.vocab_size, 5000);
    }

    #[test]
    fn clustered_locality_concentrates_cluster_vocabulary() {
        let base = SynthSpec {
            num_docs: 200,
            avg_terms_per_doc: 30.0,
            vocab_size: 5000,
            zipf_exponent: 1.0,
            mean_occurrences: 1.2,
            locality: Locality::Clustered(10),
            stopword_fraction: 0.01,
            seed: 5,
        };
        let docs = base.generate_docs();
        // Two documents of the same cluster share more terms than two
        // documents of distant clusters, on average.
        let share = |a: &Document, b: &Document| {
            let sa: HashSet<_> = a.cells().iter().map(|c| c.term).collect();
            b.cells().iter().filter(|c| sa.contains(&c.term)).count()
        };
        let near: usize = (0..10).map(|i| share(&docs[i], &docs[i + 1])).sum();
        let far: usize = (0..10).map(|i| share(&docs[i], &docs[i + 100])).sum();
        assert!(
            near > far,
            "near-cluster sharing {near} ≤ far sharing {far}"
        );
    }

    #[test]
    fn stopword_skipping_caps_document_frequencies() {
        let with_stop = SynthSpec {
            stopword_fraction: 0.0,
            ..SynthSpec::from_stats(CollectionStats::new(500, 30.0, 2000), 9)
        };
        let without_stop = SynthSpec {
            stopword_fraction: 0.02,
            ..SynthSpec::from_stats(CollectionStats::new(500, 30.0, 2000), 9)
        };
        let max_df = |docs: &[Document]| {
            crate::profile::CollectionProfile::from_docs(docs)
                .doc_freqs()
                .values()
                .copied()
                .max()
                .unwrap_or(0)
        };
        let raw = max_df(&with_stop.generate_docs());
        let trimmed = max_df(&without_stop.generate_docs());
        assert!(
            trimmed * 2 < raw,
            "skipping top ranks must cap the max document frequency: {trimmed} vs {raw}"
        );
    }

    #[test]
    fn select_random_docs_sorted_unique_bounded() {
        let ids = select_random_docs(1000, 50, 3);
        assert_eq!(ids.len(), 50);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(ids.iter().all(|d| d.raw() < 1000));
        // Requesting more than available clips.
        assert_eq!(select_random_docs(10, 50, 3).len(), 10);
    }

    #[test]
    fn geometric_mean_is_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(11);
        let p = 0.5;
        let n = 20_000;
        let total: u64 = (0..n).map(|_| sample_geometric(&mut rng, p)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.0).abs() < 0.1, "geometric(0.5) mean = {mean}");
    }
}
