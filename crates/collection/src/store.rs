//! Paged, tightly-packed document storage.
//!
//! Documents of a collection are serialized back-to-back (they may straddle
//! page boundaries) into one simulated file, in document-number order — the
//! *consecutive storage locations* assumption of section 3. Scanning the
//! collection in storage order therefore costs `D` (mostly sequential)
//! page reads, while fetching documents one at a time in arbitrary order
//! costs about `⌈S⌉` page reads each, at the random rate.
//!
//! The in-memory directory of byte spans plays the role of the record
//! directory a real system would keep in its catalog; the paper's cost
//! model does not charge I/O for it, and neither do we.

use crate::document::Document;
use crate::profile::CollectionProfile;
use std::sync::Arc;
use textjoin_common::{DocId, Result};
use textjoin_storage::{
    BufferPool, ByteSpan, DiskSim, FileId, PageKind, PrefetchMetrics, PrefetchStats, Prefetcher,
};

/// A read-only paged document store.
///
/// Document numbers are *dense* for a bulk-built store (doc `i` is the
/// `i`-th appended document) and may be *sparse* for a store produced by
/// an incremental merge: deletions leave holes in the id space, and the
/// merged store keeps the surviving documents' original ids (`ids` maps
/// storage ordinal → document number). All lookups go through the ordinal
/// mapping, so both layouts share every read path.
pub struct DocumentStore {
    disk: Arc<DiskSim>,
    file: FileId,
    directory: Vec<ByteSpan>,
    /// `None` = dense ids `0..directory.len()`; `Some` = strictly
    /// ascending sparse document numbers, one per directory slot.
    ids: Option<Vec<u32>>,
    total_bytes: u64,
}

impl DocumentStore {
    /// The simulated disk holding the store.
    pub fn disk(&self) -> &Arc<DiskSim> {
        &self.disk
    }

    /// The file the documents live in.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// `N` — number of documents.
    pub fn num_docs(&self) -> u64 {
        self.directory.len() as u64
    }

    /// `D` — occupied pages (tightly packed).
    pub fn num_pages(&self) -> u64 {
        self.total_bytes.div_ceil(self.disk.page_size() as u64)
    }

    /// Total serialized bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The document number of the `ordinal`-th stored document.
    #[inline]
    pub fn doc_at(&self, ordinal: usize) -> DocId {
        match &self.ids {
            None => DocId::new(ordinal as u32),
            Some(ids) => DocId::new(ids[ordinal]),
        }
    }

    /// The storage ordinal of a document number, if the store holds it.
    #[inline]
    pub fn ordinal_of(&self, doc: DocId) -> Option<usize> {
        match &self.ids {
            None => (doc.index() < self.directory.len()).then(|| doc.index()),
            Some(ids) => ids.binary_search(&doc.raw()).ok(),
        }
    }

    /// Whether the store holds this document number.
    #[inline]
    pub fn contains(&self, doc: DocId) -> bool {
        self.ordinal_of(doc).is_some()
    }

    /// The stored document numbers, in ascending order.
    pub fn doc_ids(&self) -> Vec<DocId> {
        (0..self.directory.len()).map(|i| self.doc_at(i)).collect()
    }

    /// The sparse id map, when the store's ids are not dense (for
    /// persisting the catalog).
    pub fn sparse_ids(&self) -> Option<&[u32]> {
        self.ids.as_deref()
    }

    /// The byte span of a document.
    ///
    /// # Panics
    /// If the store does not hold `doc`.
    pub fn span(&self, doc: DocId) -> ByteSpan {
        let ordinal = self
            .ordinal_of(doc)
            .unwrap_or_else(|| panic!("document {doc} not in store"));
        self.directory[ordinal]
    }

    /// Size of the largest document in bytes — what an executor must
    /// reserve to hold "at least one document" of this collection
    /// (section 4.1 reserves `⌈S1⌉` pages; we reserve the exact worst
    /// case so the budget can never be silently exceeded).
    pub fn max_doc_bytes(&self) -> u64 {
        self.directory.iter().map(|s| s.len).max().unwrap_or(0)
    }

    /// Pages a single random fetch of `doc` touches (`⌈Sᵢ⌉` for an average
    /// document).
    pub fn doc_pages(&self, doc: DocId) -> u64 {
        self.span(doc).num_pages(self.disk.page_size())
    }

    /// Sequentially scans the whole collection in storage order, yielding
    /// `(DocId, Document)`. Pages are read once each, in order, so the I/O
    /// bill is `D` pages (the first at the random rate if the head is
    /// elsewhere). Under the hood the scan runs through a [`Prefetcher`]:
    /// contiguous demands are batched into windowed readahead without
    /// changing the page count or the seek count.
    pub fn scan(&self) -> Scanner<'_> {
        self.scan_with_prefetch(None)
    }

    /// Like [`scan`](Self::scan), with readahead counters mirrored into
    /// the given metrics handles (`prefetch.issued` / `.hits` / `.wasted`).
    pub fn scan_with_prefetch(&self, metrics: Option<PrefetchMetrics>) -> Scanner<'_> {
        Scanner {
            store: self,
            next_doc: 0,
            prefetcher: Prefetcher::new(&self.disk, self.file, self.num_pages())
                .with_metrics(metrics),
        }
    }

    /// Reads one document through a buffer pool (document-at-a-time access,
    /// e.g. after a selection on another attribute picked out a subset).
    /// Consecutive small documents sharing a page hit the pool, giving the
    /// `min{D, N}` behaviour of section 5.1.
    pub fn read_doc(&self, pool: &BufferPool<'_>, doc: DocId) -> Result<Document> {
        let span = self.span(doc);
        let page_size = self.disk.page_size();
        let (first, n) = span.page_range(page_size);
        let pages = pool.get_run(self.file, first, n)?;
        Document::decode(&slice_span(&pages, span, first, page_size))
    }

    /// Reads one document directly from disk, bypassing any cache.
    pub fn read_doc_direct(&self, doc: DocId) -> Result<Document> {
        let span = self.span(doc);
        let page_size = self.disk.page_size();
        let (first, n) = span.page_range(page_size);
        let pages = self.disk.read_run(self.file, first, n)?;
        Document::decode(&slice_span(&pages, span, first, page_size))
    }

    /// Reassembles a store from already-persisted parts — the recovery
    /// path: the pages are on `disk` in `file`, the directory (and sparse
    /// id map, if any) was loaded from a persisted catalog.
    pub fn from_parts(
        disk: Arc<DiskSim>,
        file: FileId,
        directory: Vec<ByteSpan>,
        ids: Option<Vec<u32>>,
        total_bytes: u64,
    ) -> Self {
        debug_assert!(ids.as_ref().is_none_or(|ids| ids.len() == directory.len()));
        DocumentStore {
            disk,
            file,
            directory,
            ids,
            total_bytes,
        }
    }

    /// The raw directory of byte spans, in storage order (for persisting).
    pub fn directory(&self) -> &[ByteSpan] {
        &self.directory
    }
}

/// Extracts a byte span from a run of pages starting at page `first`.
fn slice_span(pages: &[Arc<[u8]>], span: ByteSpan, first: u64, page_size: usize) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(span.len as usize);
    let mut remaining = span.len as usize;
    let mut offset = (span.offset - first * page_size as u64) as usize;
    for page in pages {
        if remaining == 0 {
            break;
        }
        let take = remaining.min(page_size - offset);
        bytes.extend_from_slice(&page[offset..offset + take]);
        remaining -= take;
        offset = 0;
    }
    debug_assert_eq!(remaining, 0, "span not covered by page run");
    bytes
}

/// Sequential scanner over a [`DocumentStore`], reading through a
/// sequential-run [`Prefetcher`].
pub struct Scanner<'s> {
    store: &'s DocumentStore,
    next_doc: u64,
    prefetcher: Prefetcher<'s>,
}

impl Scanner<'_> {
    fn page(&mut self, page_no: u64) -> Result<Arc<[u8]>> {
        self.prefetcher.get(page_no)
    }

    /// Readahead counters accumulated by this scan so far.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetcher.stats()
    }
}

impl Iterator for Scanner<'_> {
    type Item = Result<(DocId, Document)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_doc >= self.store.num_docs() {
            return None;
        }
        let doc_id = self.store.doc_at(self.next_doc as usize);
        self.next_doc += 1;
        let span = self.store.span(doc_id);
        let page_size = self.store.disk.page_size();
        let (first, n) = span.page_range(page_size);

        let mut bytes = Vec::with_capacity(span.len as usize);
        let mut remaining = span.len as usize;
        let mut offset = (span.offset - first * page_size as u64) as usize;
        for page_no in first..first + n {
            let page = match self.page(page_no) {
                Ok(p) => p,
                Err(e) => return Some(Err(e)),
            };
            let take = remaining.min(page_size - offset);
            bytes.extend_from_slice(&page[offset..offset + take]);
            remaining -= take;
            offset = 0;
        }
        Some(Document::decode(&bytes).map(|d| (doc_id, d)))
    }
}

/// Builds a [`DocumentStore`] by appending documents in document-number
/// order, packing them tightly across page boundaries.
pub struct DocumentStoreBuilder {
    disk: Arc<DiskSim>,
    file: FileId,
    directory: Vec<ByteSpan>,
    ids: Vec<u32>,
    page_buf: Vec<u8>,
    written_bytes: u64,
}

impl DocumentStoreBuilder {
    /// Starts a new store in file `name` on `disk`.
    pub fn new(disk: Arc<DiskSim>, name: &str) -> Result<Self> {
        let file = disk.create_file_with_kind(name, PageKind::Documents)?;
        let page_size = disk.page_size();
        Ok(Self {
            disk,
            file,
            directory: Vec::new(),
            ids: Vec::new(),
            page_buf: Vec::with_capacity(page_size),
            written_bytes: 0,
        })
    }

    /// Appends a document; its document number is the append position
    /// (or one past the highest explicit id if [`add_with_id`]
    /// (Self::add_with_id) has been used).
    pub fn add(&mut self, doc: &Document) -> Result<DocId> {
        let next = self.ids.last().map_or(0, |&i| i + 1);
        self.add_with_id(DocId::new(next), doc)
    }

    /// Appends a document under an explicit document number. Ids must be
    /// strictly ascending across the build — this is how a merge preserves
    /// surviving documents' original numbers across deletion holes.
    pub fn add_with_id(&mut self, id: DocId, doc: &Document) -> Result<DocId> {
        if let Some(&last) = self.ids.last() {
            if id.raw() <= last {
                return Err(textjoin_common::Error::InvalidArgument(format!(
                    "document ids must be strictly ascending: {} after {last}",
                    id.raw()
                )));
            }
        }
        self.ids.push(id.raw());
        let bytes = doc.encode();
        let offset = self.written_bytes + self.page_buf.len() as u64;
        self.directory
            .push(ByteSpan::new(offset, bytes.len() as u64));

        let page_size = self.disk.page_size();
        let mut rest: &[u8] = &bytes;
        while !rest.is_empty() {
            let room = page_size - self.page_buf.len();
            let take = room.min(rest.len());
            self.page_buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.page_buf.len() == page_size {
                self.flush_page()?;
            }
        }
        Ok(id)
    }

    fn flush_page(&mut self) -> Result<()> {
        // The disk takes exactly one page per write; partial tail pages are
        // zero-padded here while `written_bytes` keeps the logical count.
        self.page_buf.resize(self.disk.page_size(), 0);
        self.disk.append_page(self.file, &self.page_buf)?;
        self.written_bytes += self.disk.page_size() as u64;
        self.page_buf.clear();
        Ok(())
    }

    /// Finishes the store, flushing the final partial page.
    pub fn finish(mut self) -> Result<DocumentStore> {
        let tail = self.page_buf.len() as u64;
        if tail > 0 {
            let total = self.written_bytes + tail;
            self.flush_page()?;
            self.written_bytes = total;
        }
        let dense = self.ids.iter().enumerate().all(|(i, &id)| id as usize == i);
        Ok(DocumentStore {
            disk: self.disk,
            file: self.file,
            directory: self.directory,
            ids: (!dense).then_some(self.ids),
            total_bytes: self.written_bytes,
        })
    }
}

/// A named collection: the paged store plus its measured profile.
pub struct Collection {
    name: String,
    store: DocumentStore,
    profile: CollectionProfile,
}

impl Collection {
    /// Builds a collection from in-memory documents, writing them to `disk`
    /// and profiling them in one pass.
    pub fn build(
        disk: Arc<DiskSim>,
        name: &str,
        docs: impl IntoIterator<Item = Document>,
    ) -> Result<Self> {
        let mut builder = DocumentStoreBuilder::new(disk, &format!("{name}.docs"))?;
        let mut profiler = CollectionProfile::builder();
        for doc in docs {
            builder.add(&doc)?;
            profiler.observe(&doc);
        }
        let store = builder.finish()?;
        Ok(Self {
            name: name.to_string(),
            store,
            profile: profiler.finish(),
        })
    }

    /// Builds a collection directly from raw texts, tokenizing through the
    /// given shared term registry (the standard mapping of section 3).
    pub fn from_texts<'a>(
        disk: Arc<DiskSim>,
        name: &str,
        registry: &mut crate::text::TermRegistry,
        texts: impl IntoIterator<Item = &'a str>,
    ) -> Result<Self> {
        let docs: Vec<Document> = texts.into_iter().map(|t| registry.ingest(t)).collect();
        Self::build(disk, name, docs)
    }

    /// Reassembles a collection from an already-built store and profile —
    /// the recovery / merge path.
    pub fn from_store(name: &str, store: DocumentStore, profile: CollectionProfile) -> Self {
        Self {
            name: name.to_string(),
            store,
            profile,
        }
    }

    /// The collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The paged store.
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// The measured profile.
    pub fn profile(&self) -> &CollectionProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use textjoin_common::TermId;

    fn tiny_disk() -> Arc<DiskSim> {
        Arc::new(DiskSim::new(16)) // 16-byte pages: 3 cells per page
    }

    fn doc(terms: &[(u32, u16)]) -> Document {
        Document::from_term_counts(terms.iter().map(|&(t, w)| (TermId::new(t), w as u32)))
    }

    fn build_store(disk: &Arc<DiskSim>, docs: &[Document]) -> DocumentStore {
        let mut b = DocumentStoreBuilder::new(Arc::clone(disk), "c.docs").unwrap();
        for d in docs {
            b.add(d).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn scan_round_trips_documents_across_page_boundaries() {
        let disk = tiny_disk();
        let docs = vec![
            doc(&[(1, 1), (2, 2)]),
            doc(&[(3, 3), (4, 4), (5, 5), (6, 6)]),
            doc(&[(7, 7)]),
        ];
        let store = build_store(&disk, &docs);
        let scanned: Vec<Document> = store.scan().map(|r| r.unwrap()).map(|(_, d)| d).collect();
        assert_eq!(scanned, docs);
    }

    #[test]
    fn scan_costs_d_pages_with_one_seek() {
        let disk = tiny_disk();
        // 5 docs x 2 cells x 5 bytes = 50 bytes → 4 pages of 16 bytes.
        let docs: Vec<Document> = (0..5).map(|i| doc(&[(2 * i, 1), (2 * i + 1, 1)])).collect();
        let store = build_store(&disk, &docs);
        assert_eq!(store.num_pages(), 4);
        disk.reset_stats();
        disk.reset_head();
        let n = store.scan().count();
        assert_eq!(n, 5);
        let s = disk.stats();
        assert_eq!(s.total_reads(), 4, "each page read exactly once");
        assert_eq!(s.rand_reads, 1, "only the initial seek is random");
    }

    #[test]
    fn prefetching_scan_reads_each_page_exactly_once() {
        let disk = tiny_disk();
        // Enough docs to span well past one readahead window.
        let docs: Vec<Document> = (0..40)
            .map(|i| doc(&[(2 * i, 1), (2 * i + 1, 1)]))
            .collect();
        let store = build_store(&disk, &docs);
        assert!(store.num_pages() > 8, "spans multiple readahead windows");
        disk.reset_stats();
        disk.reset_head();
        let mut scanner = store.scan();
        let n = scanner.by_ref().count();
        assert_eq!(n, 40);
        let s = disk.stats();
        assert_eq!(s.total_reads(), store.num_pages(), "no page read twice");
        assert_eq!(s.rand_reads, 1, "only the initial seek is random");
        let ps = scanner.prefetch_stats();
        assert!(ps.hits > 0, "sequential scan must hit the readahead");
        assert_eq!(ps.wasted, 0, "a full scan consumes every issued page");
    }

    #[test]
    fn scan_prefetch_metrics_are_mirrored() {
        let registry = textjoin_obs::Registry::new();
        let disk = tiny_disk();
        let docs: Vec<Document> = (0..40)
            .map(|i| doc(&[(2 * i, 1), (2 * i + 1, 1)]))
            .collect();
        let store = build_store(&disk, &docs);
        let metrics = textjoin_storage::PrefetchMetrics::register(&registry, "outer_scan");
        store.scan_with_prefetch(Some(metrics)).count();
        assert!(registry.counter("prefetch.issued", "outer_scan").get() > 0);
        assert!(registry.counter("prefetch.hits", "outer_scan").get() > 0);
    }

    #[test]
    fn random_doc_reads_cost_ceil_s_pages() {
        let disk = tiny_disk();
        // Each doc is 4 cells = 20 bytes: straddles two 16-byte pages.
        let docs: Vec<Document> = (0..4u32)
            .map(|i| doc(&[(4 * i, 1), (4 * i + 1, 1), (4 * i + 2, 1), (4 * i + 3, 1)]))
            .collect();
        let store = build_store(&disk, &docs);
        disk.reset_stats();
        disk.reset_head();
        let d = store.read_doc_direct(DocId::new(2)).unwrap();
        assert_eq!(d, docs[2]);
        assert!(disk.stats().rand_reads >= 1);
        assert!(disk.stats().total_reads() <= 2);
    }

    #[test]
    fn pooled_reads_share_pages_between_small_docs() {
        let disk = Arc::new(DiskSim::new(64));
        // 6 docs of 1 cell (5 bytes) → all in one 64-byte page... use 2 pages.
        let docs: Vec<Document> = (0..20u32).map(|i| doc(&[(i, 1)])).collect();
        let store = build_store(&disk, &docs);
        let pool = BufferPool::new(&disk, 4);
        disk.reset_stats();
        for i in 0..20u32 {
            store.read_doc(&pool, DocId::new(i)).unwrap();
        }
        // min{D, N}: reads cost at most D pages, not N.
        assert_eq!(disk.stats().total_reads(), store.num_pages());
    }

    #[test]
    fn directory_spans_are_contiguous_and_tight() {
        let disk = tiny_disk();
        let docs = vec![doc(&[(1, 1)]), doc(&[(2, 1), (3, 1)]), doc(&[(4, 1)])];
        let store = build_store(&disk, &docs);
        assert_eq!(store.span(DocId::new(0)), ByteSpan::new(0, 5));
        assert_eq!(store.span(DocId::new(1)), ByteSpan::new(5, 10));
        assert_eq!(store.span(DocId::new(2)), ByteSpan::new(15, 5));
        assert_eq!(store.total_bytes(), 20);
    }

    #[test]
    fn collection_build_profiles_while_writing() {
        let disk = tiny_disk();
        let c = Collection::build(
            Arc::clone(&disk),
            "tiny",
            vec![doc(&[(1, 2), (2, 1)]), doc(&[(2, 3)])],
        )
        .unwrap();
        assert_eq!(c.name(), "tiny");
        assert_eq!(c.store().num_docs(), 2);
        let stats = c.profile().stats();
        assert_eq!(stats.num_docs, 2);
        assert_eq!(stats.distinct_terms, 2);
        assert!((stats.avg_terms_per_doc - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_texts_tokenizes_through_shared_registry() {
        let disk = Arc::new(DiskSim::new(4096));
        let mut registry = crate::text::TermRegistry::new();
        let c = Collection::from_texts(
            Arc::clone(&disk),
            "texts",
            &mut registry,
            ["join processing engines", "query engines and joins"],
        )
        .unwrap();
        assert_eq!(c.store().num_docs(), 2);
        let join = registry.lookup("join").expect("stemmed, interned");
        assert_eq!(c.profile().doc_frequency(join), 2);
    }

    #[test]
    fn empty_collection_is_representable() {
        let disk = tiny_disk();
        let store = build_store(&disk, &[]);
        assert_eq!(store.num_docs(), 0);
        assert_eq!(store.num_pages(), 0);
        assert_eq!(store.scan().count(), 0);
    }
}
