//! Text ingestion: tokenizer, stop words, light stemming and the standard
//! term-number mapping.
//!
//! Section 3 of the paper argues that a multidatabase system benefits from a
//! *standard mapping* from terms to term numbers shared by all local IR
//! systems: it saves communication (numbers instead of strings) and
//! processing (integer comparisons). [`TermRegistry`] is that mapping — all
//! collections built through one registry agree on term numbers, which is
//! what lets the join algorithms compare d-cells across databases directly.

use crate::document::Document;
use std::collections::HashMap;
use textjoin_common::TermId;

/// English stop words excluded from indexing (a compact, conventional list;
/// IR systems drop these because they carry no discriminating power).
const STOP_WORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "had", "has", "have",
    "he", "her", "his", "i", "in", "is", "it", "its", "not", "of", "on", "or", "our", "she",
    "that", "the", "their", "they", "this", "to", "was", "we", "were", "will", "with", "you",
    "your",
];

/// The shared term → term-number mapping ("standard mapping", section 3).
///
/// Numbers are assigned densely in first-seen order, so they always fit the
/// 3-byte encoding for vocabularies up to ~16.7M terms.
#[derive(Debug, Default)]
pub struct TermRegistry {
    by_term: HashMap<String, TermId>,
    terms: Vec<String>,
}

impl TermRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no terms are registered.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns the id of `term`, registering it if new.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = TermId::new(self.terms.len() as u32);
        self.by_term.insert(term.to_string(), id);
        self.terms.push(term.to_string());
        id
    }

    /// Looks a term up without registering it.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// The term string for an id.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.index()).map(String::as_str)
    }

    /// Tokenizes, normalizes and interns `text` into a [`Document`].
    pub fn ingest(&mut self, text: &str) -> Document {
        let mut counts: HashMap<TermId, u32> = HashMap::new();
        for token in tokenize(text) {
            let id = self.intern(&token);
            *counts.entry(id).or_insert(0) += 1;
        }
        Document::from_term_counts(counts)
    }

    /// Like [`ingest`](Self::ingest) but read-only: unknown terms are
    /// dropped instead of registered (useful when probing with a query
    /// against a frozen vocabulary).
    pub fn ingest_readonly(&self, text: &str) -> Document {
        let mut counts: HashMap<TermId, u32> = HashMap::new();
        for token in tokenize(text) {
            if let Some(id) = self.lookup(&token) {
                *counts.entry(id).or_insert(0) += 1;
            }
        }
        Document::from_term_counts(counts)
    }
}

/// Splits text into normalized index terms: lowercase alphanumeric runs,
/// stop words removed, light suffix stemming applied.
pub fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .filter(|w| w.len() > 1 && !STOP_WORDS.contains(&w.as_str()))
        .map(|w| stem(&w))
}

/// A light suffix stemmer (a small subset of Porter's rules — enough to
/// conflate the common English inflections without a full rule engine).
pub fn stem(word: &str) -> String {
    let w = word;
    // Order matters: longest applicable suffix first.
    for (suffix, min_stem) in [
        ("ations", 3),
        ("ation", 3),
        ("ings", 3),
        ("ing", 3),
        ("edly", 3),
        ("ies", 2),
        ("ed", 3),
    ] {
        if let Some(stemmed) = w.strip_suffix(suffix) {
            if stemmed.len() >= min_stem {
                // "ies" → "y" (queries → query).
                if suffix == "ies" {
                    return format!("{stemmed}y");
                }
                return stemmed.to_string();
            }
        }
    }
    // Plural handling follows Harman's s-stemmer: "-es" drops only the "s"
    // so "databases" conflates with "database"; a bare "-s" is dropped
    // except after "s"/"u" ("less", "bus" stay put).
    if let Some(stemmed) = w.strip_suffix('s') {
        if stemmed.len() >= 3 && !stemmed.ends_with('s') && !stemmed.ends_with('u') {
            return stemmed.to_string();
        }
    }
    w.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits_on_non_alphanumeric() {
        let tokens: Vec<String> = tokenize("Database-Systems, 2nd Edition!").collect();
        assert_eq!(tokens, vec!["database", "system", "2nd", "edition"]);
    }

    #[test]
    fn tokenize_drops_stop_words_and_single_chars() {
        let tokens: Vec<String> = tokenize("the cat and a dog x").collect();
        assert_eq!(tokens, vec!["cat", "dog"]);
    }

    #[test]
    fn stemming_conflates_inflections() {
        assert_eq!(stem("engineering"), "engineer");
        assert_eq!(stem("joins"), "join");
        assert_eq!(stem("queries"), "query");
        assert_eq!(stem("processed"), "process");
        // s-stemmer plural handling: singular and plural conflate.
        assert_eq!(stem("databases"), "database");
        assert_eq!(stem("database"), "database");
        // Short stems are left alone ("thing" must not become "th"), and
        // "-ss"/"-us" words keep their s.
        assert_eq!(stem("as"), "as");
        assert_eq!(stem("thing"), "thing");
        assert_eq!(stem("less"), "less");
        assert_eq!(stem("bus"), "bus");
    }

    #[test]
    fn registry_assigns_dense_stable_ids() {
        let mut reg = TermRegistry::new();
        let a = reg.intern("database");
        let b = reg.intern("join");
        assert_eq!(a, reg.intern("database"));
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.term(a), Some("database"));
        assert_eq!(reg.lookup("join"), Some(b));
        assert_eq!(reg.lookup("missing"), None);
    }

    #[test]
    fn ingest_counts_occurrences() {
        let mut reg = TermRegistry::new();
        let doc = reg.ingest("join queries join databases; queries join");
        let join = reg.lookup("join").unwrap();
        let query = reg.lookup("query").unwrap();
        assert_eq!(doc.weight_of(join), 3);
        assert_eq!(doc.weight_of(query), 2);
    }

    #[test]
    fn shared_registry_aligns_term_numbers_across_collections() {
        // The multidatabase scenario of section 3: two local systems using
        // the same standard mapping can compare term numbers directly.
        let mut reg = TermRegistry::new();
        let resume = reg.ingest("senior database engineer with query optimization experience");
        let job = reg.ingest("database engineer role: query engines and optimization");
        assert!(resume.dot(&job).value() >= 3.0); // database, engineer, query, optimization
    }

    #[test]
    fn readonly_ingest_drops_unknown_terms() {
        let mut reg = TermRegistry::new();
        reg.ingest("alpha beta");
        let d = reg.ingest_readonly("alpha gamma");
        assert_eq!(d.num_terms(), 1);
        assert_eq!(reg.lookup("gamma"), None);
    }
}
