//! A page-based B+tree term dictionary.
//!
//! Section 5.2: "For each inverted file, there is a B+tree which is used to
//! find whether a term is in the collection and if present where the
//! corresponding inverted file entry is located. … Typically, each cell in
//! the B+tree occupies 9 bytes (3 for each term number, 4 for address and 2
//! for document frequency)." The paper sizes the tree by its leaf level
//! (`Bt = 9·T / P`) and assumes HVNL reads the whole tree into memory once.
//!
//! This module implements the real structure: leaf pages of 9-byte cells
//! chained left-to-right, internal pages of (separator, child) cells,
//! bulk-loading from sorted input, point search by descent, and insertion
//! with node splits. [`BTreeFile::load_leaves`] performs the paper's
//! "read the whole B+tree" step as one sequential scan.
//!
//! Page layout (page size `P`):
//!
//! ```text
//! byte 0       : node kind (0 = leaf, 1 = internal)
//! bytes 1..3   : cell count (u16 LE)
//! bytes 3..7   : leaf — next-leaf page (u32 LE, MAX = none)
//!                internal — leftmost child page (u32 LE)
//! leaf cell    : term (3B LE) + entry ordinal (4B LE) + doc freq (2B LE)
//! internal cell: separator term (3B LE) + child page (4B LE)
//! ```
//!
//! An internal cell `(k, c)` means: keys `>= k` (up to the next separator)
//! live under child `c`; keys below the first separator live under the
//! leftmost child.

use std::sync::Arc;
use textjoin_common::{Error, Result, TermId};
use textjoin_storage::{DiskSim, FileId, PageKind};

const HEADER_BYTES: usize = 7;
const LEAF_CELL_BYTES: usize = 9;
const INTERNAL_CELL_BYTES: usize = 7;
const NO_PAGE: u32 = u32::MAX;

/// The value stored for a term: where its inverted-file entry lives and how
/// many documents contain the term.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TermEntry {
    /// Ordinal of the entry in the inverted file (its index in term order).
    pub ordinal: u32,
    /// Document frequency of the term in the collection.
    pub doc_freq: u16,
}

/// A paged B+tree mapping term numbers to [`TermEntry`] values.
pub struct BTreeFile {
    disk: Arc<DiskSim>,
    file: FileId,
    root: u32,
    height: u32,
    num_terms: u64,
    first_leaf: u32,
    num_leaf_pages: u64,
}

#[derive(Clone)]
enum Node {
    Leaf {
        cells: Vec<(u32, TermEntry)>,
        next: u32,
    },
    Internal {
        leftmost: u32,
        cells: Vec<(u32, u32)>,
    },
}

impl Node {
    fn decode(page: &[u8]) -> Result<Node> {
        let kind = page[0];
        let count = u16::from_le_bytes([page[1], page[2]]) as usize;
        let head = u32::from_le_bytes([page[3], page[4], page[5], page[6]]);
        match kind {
            0 => {
                let mut cells = Vec::with_capacity(count);
                for i in 0..count {
                    let o = HEADER_BYTES + i * LEAF_CELL_BYTES;
                    let c = &page[o..o + LEAF_CELL_BYTES];
                    let term = u32::from_le_bytes([c[0], c[1], c[2], 0]);
                    let ordinal = u32::from_le_bytes([c[3], c[4], c[5], c[6]]);
                    let doc_freq = u16::from_le_bytes([c[7], c[8]]);
                    cells.push((term, TermEntry { ordinal, doc_freq }));
                }
                Ok(Node::Leaf { cells, next: head })
            }
            1 => {
                let mut cells = Vec::with_capacity(count);
                for i in 0..count {
                    let o = HEADER_BYTES + i * INTERNAL_CELL_BYTES;
                    let c = &page[o..o + INTERNAL_CELL_BYTES];
                    let term = u32::from_le_bytes([c[0], c[1], c[2], 0]);
                    let child = u32::from_le_bytes([c[3], c[4], c[5], c[6]]);
                    cells.push((term, child));
                }
                Ok(Node::Internal {
                    leftmost: head,
                    cells,
                })
            }
            k => Err(Error::Corrupt(format!("unknown B+tree node kind {k}"))),
        }
    }

    fn encode(&self, page_size: usize) -> Vec<u8> {
        let mut out = vec![0u8; page_size];
        match self {
            Node::Leaf { cells, next } => {
                out[0] = 0;
                out[1..3].copy_from_slice(&(cells.len() as u16).to_le_bytes());
                out[3..7].copy_from_slice(&next.to_le_bytes());
                for (i, (term, v)) in cells.iter().enumerate() {
                    let o = HEADER_BYTES + i * LEAF_CELL_BYTES;
                    out[o..o + 3].copy_from_slice(&term.to_le_bytes()[..3]);
                    out[o + 3..o + 7].copy_from_slice(&v.ordinal.to_le_bytes());
                    out[o + 7..o + 9].copy_from_slice(&v.doc_freq.to_le_bytes());
                }
            }
            Node::Internal { leftmost, cells } => {
                out[0] = 1;
                out[1..3].copy_from_slice(&(cells.len() as u16).to_le_bytes());
                out[3..7].copy_from_slice(&leftmost.to_le_bytes());
                for (i, (term, child)) in cells.iter().enumerate() {
                    let o = HEADER_BYTES + i * INTERNAL_CELL_BYTES;
                    out[o..o + 3].copy_from_slice(&term.to_le_bytes()[..3]);
                    out[o + 3..o + 7].copy_from_slice(&child.to_le_bytes());
                }
            }
        }
        out
    }
}

/// Cells per leaf page.
pub fn leaf_capacity(page_size: usize) -> usize {
    (page_size - HEADER_BYTES) / LEAF_CELL_BYTES
}

/// Cells per internal page.
pub fn internal_capacity(page_size: usize) -> usize {
    (page_size - HEADER_BYTES) / INTERNAL_CELL_BYTES
}

impl BTreeFile {
    /// Bulk-loads a tree from `(term, entry)` pairs in strictly increasing
    /// term order, packing leaves tightly (the paper assumes a tightly
    /// packed tree when estimating `Bt`).
    pub fn bulk_load(
        disk: Arc<DiskSim>,
        name: &str,
        entries: &[(TermId, TermEntry)],
    ) -> Result<BTreeFile> {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk load input must be strictly increasing by term"
        );
        let file = disk.create_file_with_kind(name, PageKind::BTree)?;
        let page_size = disk.page_size();
        let leaf_cap = leaf_capacity(page_size);
        let internal_cap = internal_capacity(page_size);

        // Write leaves.
        let mut level: Vec<(u32, u32)> = Vec::new(); // (first term, page)
        let chunks: Vec<&[(TermId, TermEntry)]> = if entries.is_empty() {
            vec![&[][..]]
        } else {
            entries.chunks(leaf_cap).collect()
        };
        let num_leaves = chunks.len() as u64;
        for (i, chunk) in chunks.iter().enumerate() {
            let next = if i + 1 < chunks.len() {
                (i + 1) as u32
            } else {
                NO_PAGE
            };
            let node = Node::Leaf {
                cells: chunk.iter().map(|&(t, v)| (t.raw(), v)).collect(),
                next,
            };
            let page = disk.append_page(file, &node.encode(page_size))?;
            level.push((
                chunk.first().map(|&(t, _)| t.raw()).unwrap_or(0),
                page as u32,
            ));
        }

        // Build internal levels until a single root remains.
        let mut height = 0u32;
        while level.len() > 1 {
            height += 1;
            let mut parent_level = Vec::new();
            for group in level.chunks(internal_cap + 1) {
                let leftmost = group[0].1;
                let cells: Vec<(u32, u32)> = group[1..]
                    .iter()
                    .map(|&(term, page)| (term, page))
                    .collect();
                let node = Node::Internal { leftmost, cells };
                let page = disk.append_page(file, &node.encode(page_size))?;
                parent_level.push((group[0].0, page as u32));
            }
            level = parent_level;
        }

        Ok(BTreeFile {
            disk,
            file,
            root: level[0].1,
            height,
            num_terms: entries.len() as u64,
            first_leaf: 0,
            num_leaf_pages: num_leaves,
        })
    }

    /// Creates an empty tree (a single empty leaf), ready for inserts.
    pub fn create_empty(disk: Arc<DiskSim>, name: &str) -> Result<BTreeFile> {
        Self::bulk_load(disk, name, &[])
    }

    /// Reopens a persisted tree from its scalar catalog record — the
    /// recovery path (the pages are already on disk in `file`).
    pub fn from_parts(
        disk: Arc<DiskSim>,
        file: FileId,
        root: u32,
        height: u32,
        num_terms: u64,
        first_leaf: u32,
        num_leaf_pages: u64,
    ) -> Self {
        Self {
            disk,
            file,
            root,
            height,
            num_terms,
            first_leaf,
            num_leaf_pages,
        }
    }

    /// The root page (for persisting the scalar catalog record).
    pub fn root(&self) -> u32 {
        self.root
    }

    /// The first leaf page of the chain (for persisting).
    pub fn first_leaf(&self) -> u32 {
        self.first_leaf
    }

    /// Total pages of the tree file (leaves + internal nodes).
    pub fn num_pages(&self) -> u64 {
        self.disk.num_pages(self.file)
    }

    /// Leaf pages only — the level the paper's `Bt = 9·T / P` estimate
    /// counts.
    pub fn num_leaf_pages(&self) -> u64 {
        self.num_leaf_pages
    }

    /// Number of terms stored.
    pub fn num_terms(&self) -> u64 {
        self.num_terms
    }

    /// Height of the tree (0 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The file holding the tree.
    pub fn file(&self) -> FileId {
        self.file
    }

    fn read_node(&self, page: u32) -> Result<Node> {
        Node::decode(&self.disk.read_page(self.file, page as u64)?)
    }

    /// Point lookup by descending from the root; each visited node costs
    /// one page read. HVNL instead loads the whole tree once with
    /// [`load_leaves`](Self::load_leaves) — this method exists for the
    /// descent-per-probe ablation and for verification.
    pub fn search(&self, term: TermId) -> Result<Option<TermEntry>> {
        let mut page = self.root;
        loop {
            match self.read_node(page)? {
                Node::Internal { leftmost, cells } => {
                    // Last separator <= term wins; below the first separator
                    // go leftmost.
                    let idx = cells.partition_point(|&(k, _)| k <= term.raw());
                    page = if idx == 0 { leftmost } else { cells[idx - 1].1 };
                }
                Node::Leaf { cells, .. } => {
                    return Ok(cells
                        .binary_search_by_key(&term.raw(), |&(t, _)| t)
                        .ok()
                        .map(|i| cells[i].1));
                }
            }
        }
    }

    /// Reads the entire tree sequentially into an in-memory dictionary —
    /// the one-time `Bt` cost that HVNL pays up front (section 5.2 assumes
    /// "the entire B+tree will be read in the memory when the inverted file
    /// needs to be accessed").
    pub fn load_leaves(&self) -> Result<Dictionary> {
        let total = self.disk.num_pages(self.file);
        let pages = self.disk.read_scan(self.file, 0, total)?;
        let mut terms = Vec::with_capacity(self.num_terms as usize);
        // Leaves were written first and chained in order during bulk load,
        // but inserts may have appended leaves out of order — follow the
        // chain over the in-memory pages.
        let mut leaf = self.first_leaf;
        while leaf != NO_PAGE {
            match Node::decode(&pages[leaf as usize])? {
                Node::Leaf { cells, next } => {
                    terms.extend(cells);
                    leaf = next;
                }
                Node::Internal { .. } => {
                    return Err(Error::Corrupt("leaf chain reached an internal node".into()))
                }
            }
        }
        Ok(Dictionary { terms })
    }

    /// Inserts or replaces a term. Splits full nodes on the way back up and
    /// grows a new root when the old one splits.
    pub fn insert(&mut self, term: TermId, value: TermEntry) -> Result<()> {
        let page_size = self.disk.page_size();
        let existed = self.insert_rec(self.root, term, value)?;
        if let Some((sep, new_page)) = existed.split {
            // Root split: new root with two children.
            let node = Node::Internal {
                leftmost: self.root,
                cells: vec![(sep, new_page)],
            };
            let new_root = self.disk.append_page(self.file, &node.encode(page_size))? as u32;
            self.root = new_root;
            self.height += 1;
        }
        if existed.inserted_new {
            self.num_terms += 1;
        }
        Ok(())
    }

    fn write_node(&self, page: u32, node: &Node) -> Result<()> {
        self.disk
            .write_page(self.file, page as u64, &node.encode(self.disk.page_size()))
    }

    fn append_node(&self, node: &Node) -> Result<u32> {
        Ok(self
            .disk
            .append_page(self.file, &node.encode(self.disk.page_size()))? as u32)
    }

    fn insert_rec(&mut self, page: u32, term: TermId, value: TermEntry) -> Result<InsertOutcome> {
        let page_size = self.disk.page_size();
        match self.read_node(page)? {
            Node::Leaf { mut cells, next } => {
                let inserted_new = match cells.binary_search_by_key(&term.raw(), |&(t, _)| t) {
                    Ok(i) => {
                        cells[i].1 = value;
                        false
                    }
                    Err(i) => {
                        cells.insert(i, (term.raw(), value));
                        true
                    }
                };
                if cells.len() <= leaf_capacity(page_size) {
                    self.write_node(page, &Node::Leaf { cells, next })?;
                    return Ok(InsertOutcome {
                        inserted_new,
                        split: None,
                    });
                }
                // Split the leaf in half; the new right leaf is appended.
                let mid = cells.len() / 2;
                let right_cells = cells.split_off(mid);
                let sep = right_cells[0].0;
                let right = self.append_node(&Node::Leaf {
                    cells: right_cells,
                    next,
                })?;
                if self.num_leaf_pages > 0 {
                    self.num_leaf_pages += 1;
                }
                self.write_node(page, &Node::Leaf { cells, next: right })?;
                Ok(InsertOutcome {
                    inserted_new,
                    split: Some((sep, right)),
                })
            }
            Node::Internal {
                leftmost,
                mut cells,
            } => {
                let idx = cells.partition_point(|&(k, _)| k <= term.raw());
                let child = if idx == 0 { leftmost } else { cells[idx - 1].1 };
                let outcome = self.insert_rec(child, term, value)?;
                let Some((sep, new_child)) = outcome.split else {
                    return Ok(outcome);
                };
                cells.insert(idx, (sep, new_child));
                if cells.len() <= internal_capacity(page_size) {
                    self.write_node(page, &Node::Internal { leftmost, cells })?;
                    return Ok(InsertOutcome {
                        inserted_new: outcome.inserted_new,
                        split: None,
                    });
                }
                // Split the internal node; the middle separator moves up.
                let mid = cells.len() / 2;
                let mut right_cells = cells.split_off(mid);
                let (up_sep, right_leftmost) = right_cells.remove(0);
                let right = self.append_node(&Node::Internal {
                    leftmost: right_leftmost,
                    cells: right_cells,
                })?;
                self.write_node(page, &Node::Internal { leftmost, cells })?;
                Ok(InsertOutcome {
                    inserted_new: outcome.inserted_new,
                    split: Some((up_sep, right)),
                })
            }
        }
    }

    /// Removes a term, returning whether it was present. Deletion is
    /// *lazy* (the strategy of production B-trees like PostgreSQL's
    /// nbtree): the cell is removed from its leaf but nodes are never
    /// merged, so separators stay valid and concurrent searches are
    /// unaffected; space is reclaimed when the tree is next bulk-rebuilt.
    pub fn remove(&mut self, term: TermId) -> Result<bool> {
        let mut page = self.root;
        loop {
            match self.read_node(page)? {
                Node::Internal { leftmost, cells } => {
                    let idx = cells.partition_point(|&(k, _)| k <= term.raw());
                    page = if idx == 0 { leftmost } else { cells[idx - 1].1 };
                }
                Node::Leaf { mut cells, next } => {
                    let Ok(i) = cells.binary_search_by_key(&term.raw(), |&(t, _)| t) else {
                        return Ok(false);
                    };
                    cells.remove(i);
                    self.write_node(page, &Node::Leaf { cells, next })?;
                    self.num_terms -= 1;
                    return Ok(true);
                }
            }
        }
    }

    /// All `(term, entry)` pairs in term order, by walking the leaf chain.
    /// Used by tests and verification; costs one page read per chained leaf.
    pub fn scan_leaves(&self) -> Result<Vec<(TermId, TermEntry)>> {
        let mut out = Vec::with_capacity(self.num_terms as usize);
        let mut leaf = self.first_leaf;
        while leaf != NO_PAGE {
            match self.read_node(leaf)? {
                Node::Leaf { cells, next } => {
                    out.extend(cells.into_iter().map(|(t, v)| (TermId::new(t), v)));
                    leaf = next;
                }
                Node::Internal { .. } => {
                    return Err(Error::Corrupt("leaf chain reached an internal node".into()))
                }
            }
        }
        Ok(out)
    }
}

struct InsertOutcome {
    inserted_new: bool,
    /// `(separator, new right sibling page)` when the child split.
    split: Option<(u32, u32)>,
}

/// The in-memory dictionary produced by loading the whole B+tree: term →
/// (entry ordinal, document frequency), with `O(log T)` lookups over a
/// sorted array.
#[derive(Clone, Debug)]
pub struct Dictionary {
    terms: Vec<(u32, TermEntry)>,
}

impl Dictionary {
    /// Looks a term up.
    pub fn lookup(&self, term: TermId) -> Option<TermEntry> {
        self.terms
            .binary_search_by_key(&term.raw(), |&(t, _)| t)
            .ok()
            .map(|i| self.terms[i].1)
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(term, entry)` in term order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, TermEntry)> + '_ {
        self.terms.iter().map(|&(t, v)| (TermId::new(t), v))
    }

    /// Resident size in bytes, charged against HVNL's memory budget
    /// (9 bytes per cell, as the paper sizes `Bt`).
    pub fn size_bytes(&self) -> u64 {
        (self.terms.len() * LEAF_CELL_BYTES) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn entry(o: u32, df: u16) -> TermEntry {
        TermEntry {
            ordinal: o,
            doc_freq: df,
        }
    }

    fn sorted_entries(n: u32, stride: u32) -> Vec<(TermId, TermEntry)> {
        (0..n)
            .map(|i| (TermId::new(i * stride), entry(i, (i % 500) as u16 + 1)))
            .collect()
    }

    fn small_disk() -> Arc<DiskSim> {
        // 64-byte pages: 6 leaf cells, 8 internal cells — forces real trees.
        Arc::new(DiskSim::new(64))
    }

    #[test]
    fn capacities_match_layout() {
        assert_eq!(leaf_capacity(4096), (4096 - 7) / 9);
        assert_eq!(internal_capacity(64), (64 - 7) / 7);
    }

    #[test]
    fn bulk_load_and_search_small() {
        let disk = small_disk();
        let entries = sorted_entries(100, 3);
        let tree = BTreeFile::bulk_load(disk, "bt", &entries).unwrap();
        assert_eq!(tree.num_terms(), 100);
        assert!(
            tree.height() >= 1,
            "100 entries cannot fit one 64-byte leaf"
        );
        for &(t, v) in &entries {
            assert_eq!(tree.search(t).unwrap(), Some(v), "term {t}");
        }
        // Misses between and beyond keys.
        assert_eq!(tree.search(TermId::new(1)).unwrap(), None);
        assert_eq!(tree.search(TermId::new(1000)).unwrap(), None);
    }

    #[test]
    fn bulk_load_empty_tree() {
        let disk = small_disk();
        let tree = BTreeFile::bulk_load(disk, "bt", &[]).unwrap();
        assert_eq!(tree.num_terms(), 0);
        assert_eq!(tree.search(TermId::new(0)).unwrap(), None);
        assert!(tree.load_leaves().unwrap().is_empty());
    }

    #[test]
    fn load_leaves_is_one_sequential_scan() {
        let disk = small_disk();
        let entries = sorted_entries(200, 1);
        let tree = BTreeFile::bulk_load(Arc::clone(&disk), "bt", &entries).unwrap();
        disk.reset_stats();
        disk.reset_head();
        let dict = tree.load_leaves().unwrap();
        let s = disk.stats();
        // Streamed scan: one seek, then sequential — the paper's one-time
        // Bt cost.
        assert_eq!(s.total_reads(), tree.num_pages());
        assert_eq!(s.rand_reads, 1);
        assert_eq!(s.seq_reads, tree.num_pages() - 1);
        assert_eq!(dict.len(), 200);
        for &(t, v) in &entries {
            assert_eq!(dict.lookup(t), Some(v));
        }
        assert_eq!(dict.lookup(TermId::new(777)), None);
    }

    #[test]
    fn dictionary_size_matches_paper_cell_size() {
        let disk = small_disk();
        let tree = BTreeFile::bulk_load(disk, "bt", &sorted_entries(50, 2)).unwrap();
        let dict = tree.load_leaves().unwrap();
        assert_eq!(dict.size_bytes(), 50 * 9);
    }

    #[test]
    fn insert_into_empty_tree_then_search() {
        let disk = small_disk();
        let mut tree = BTreeFile::create_empty(disk, "bt").unwrap();
        for i in (0..50u32).rev() {
            tree.insert(TermId::new(i * 7), entry(i, 1)).unwrap();
        }
        assert_eq!(tree.num_terms(), 50);
        for i in 0..50u32 {
            assert_eq!(tree.search(TermId::new(i * 7)).unwrap(), Some(entry(i, 1)));
        }
        let leaves = tree.scan_leaves().unwrap();
        assert_eq!(leaves.len(), 50);
        assert!(
            leaves.windows(2).all(|w| w[0].0 < w[1].0),
            "leaf chain sorted"
        );
    }

    #[test]
    fn insert_replaces_existing_value() {
        let disk = small_disk();
        let mut tree = BTreeFile::bulk_load(disk, "bt", &sorted_entries(10, 1)).unwrap();
        tree.insert(TermId::new(5), entry(99, 9)).unwrap();
        assert_eq!(tree.num_terms(), 10, "replacement must not grow the tree");
        assert_eq!(tree.search(TermId::new(5)).unwrap(), Some(entry(99, 9)));
    }

    #[test]
    fn interleaved_inserts_into_bulk_loaded_tree() {
        let disk = small_disk();
        let even: Vec<_> = (0..60u32)
            .map(|i| (TermId::new(i * 2), entry(i, 1)))
            .collect();
        let mut tree = BTreeFile::bulk_load(disk, "bt", &even).unwrap();
        for i in 0..60u32 {
            tree.insert(TermId::new(i * 2 + 1), entry(1000 + i, 2))
                .unwrap();
        }
        assert_eq!(tree.num_terms(), 120);
        let leaves = tree.scan_leaves().unwrap();
        let terms: Vec<u32> = leaves.iter().map(|&(t, _)| t.raw()).collect();
        assert_eq!(terms, (0..120u32).collect::<Vec<_>>());
    }

    #[test]
    fn root_split_grows_height() {
        let disk = small_disk();
        let mut tree = BTreeFile::create_empty(disk, "bt").unwrap();
        let before = tree.height();
        for i in 0..500u32 {
            tree.insert(TermId::new(i), entry(i, 1)).unwrap();
        }
        assert!(tree.height() > before);
        assert_eq!(tree.search(TermId::new(499)).unwrap(), Some(entry(499, 1)));
    }

    #[test]
    fn paper_scale_leaf_count() {
        // Section 5.2's example: 100 000 distinct terms → about 220 leaf
        // pages of 4KB.
        let disk = Arc::new(DiskSim::new(4096));
        let entries: Vec<_> = (0..100_000u32)
            .map(|i| (TermId::new(i), entry(i, 1)))
            .collect();
        let tree = BTreeFile::bulk_load(disk, "bt", &entries).unwrap();
        let leaves = tree.num_leaf_pages();
        assert!((219..=222).contains(&leaves), "leaf pages = {leaves}");
    }

    #[test]
    fn remove_deletes_and_tolerates_misses() {
        let disk = small_disk();
        let mut tree = BTreeFile::bulk_load(disk, "bt", &sorted_entries(40, 2)).unwrap();
        assert!(tree.remove(TermId::new(20)).unwrap());
        assert_eq!(tree.search(TermId::new(20)).unwrap(), None);
        assert!(
            !tree.remove(TermId::new(20)).unwrap(),
            "double delete is a miss"
        );
        assert!(
            !tree.remove(TermId::new(21)).unwrap(),
            "never-present key is a miss"
        );
        assert_eq!(tree.num_terms(), 39);
        // Remaining keys are intact and ordered.
        let leaves = tree.scan_leaves().unwrap();
        assert_eq!(leaves.len(), 39);
        assert!(leaves.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn delete_then_reinsert_round_trips() {
        let disk = small_disk();
        let mut tree = BTreeFile::bulk_load(disk, "bt", &sorted_entries(30, 3)).unwrap();
        for i in (0..30u32).step_by(2) {
            assert!(tree.remove(TermId::new(i * 3)).unwrap());
        }
        for i in (0..30u32).step_by(2) {
            tree.insert(TermId::new(i * 3), entry(900 + i, 7)).unwrap();
        }
        assert_eq!(tree.num_terms(), 30);
        assert_eq!(tree.search(TermId::new(0)).unwrap(), Some(entry(900, 7)));
        assert_eq!(tree.search(TermId::new(3)).unwrap(), Some(entry(1, 2)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_mixed_inserts_and_deletes_match_oracle(
            bulk in proptest::collection::btree_map(0u32..3000, (0u32..1000, 1u16..100), 0..100),
            ops in proptest::collection::vec(
                (proptest::bool::ANY, 0u32..3000, 0u32..1000, 1u16..100),
                0..200,
            ),
        ) {
            let disk = Arc::new(DiskSim::new(64));
            let mut oracle: BTreeMap<u32, TermEntry> =
                bulk.iter().map(|(&t, &(o, df))| (t, entry(o, df))).collect();
            let bulk_entries: Vec<_> =
                oracle.iter().map(|(&t, &v)| (TermId::new(t), v)).collect();
            let mut tree = BTreeFile::bulk_load(disk, "bt", &bulk_entries).unwrap();

            for &(is_insert, t, o, df) in &ops {
                if is_insert {
                    tree.insert(TermId::new(t), entry(o, df)).unwrap();
                    oracle.insert(t, entry(o, df));
                } else {
                    let removed = tree.remove(TermId::new(t)).unwrap();
                    prop_assert_eq!(removed, oracle.remove(&t).is_some());
                }
            }
            prop_assert_eq!(tree.num_terms(), oracle.len() as u64);
            let leaves = tree.scan_leaves().unwrap();
            let expect: Vec<(TermId, TermEntry)> =
                oracle.iter().map(|(&t, &v)| (TermId::new(t), v)).collect();
            prop_assert_eq!(leaves, expect);
        }

        #[test]
        fn prop_matches_btreemap_oracle(
            bulk in proptest::collection::btree_map(0u32..5000, (0u32..1000, 1u16..100), 0..150),
            inserts in proptest::collection::vec((0u32..5000, 0u32..1000, 1u16..100), 0..150),
            probes in proptest::collection::vec(0u32..5000, 0..60),
        ) {
            let disk = Arc::new(DiskSim::new(64));
            let mut oracle: BTreeMap<u32, TermEntry> = bulk
                .iter()
                .map(|(&t, &(o, df))| (t, entry(o, df)))
                .collect();
            let bulk_entries: Vec<_> =
                oracle.iter().map(|(&t, &v)| (TermId::new(t), v)).collect();
            let mut tree = BTreeFile::bulk_load(disk, "bt", &bulk_entries).unwrap();

            for &(t, o, df) in &inserts {
                tree.insert(TermId::new(t), entry(o, df)).unwrap();
                oracle.insert(t, entry(o, df));
            }

            prop_assert_eq!(tree.num_terms(), oracle.len() as u64);
            for &t in &probes {
                prop_assert_eq!(
                    tree.search(TermId::new(t)).unwrap(),
                    oracle.get(&t).copied()
                );
            }
            // Leaf chain enumerates the oracle exactly, in order.
            let leaves = tree.scan_leaves().unwrap();
            let expect: Vec<(TermId, TermEntry)> =
                oracle.iter().map(|(&t, &v)| (TermId::new(t), v)).collect();
            prop_assert_eq!(leaves, expect);
            // Loaded dictionary agrees with descent-based search.
            let dict = tree.load_leaves().unwrap();
            for &t in &probes {
                prop_assert_eq!(dict.lookup(TermId::new(t)), oracle.get(&t).copied());
            }
        }
    }
}
