//! Inverted files and their B+tree term dictionaries.
//!
//! Section 3 of the paper assumes every document collection comes with an
//! inverted file — for each term, the list of `(d#, w)` i-cells of the
//! documents containing it, stored tightly packed in ascending term order —
//! and section 5.2 adds a B+tree per inverted file "to find whether a term
//! is in the collection and if present where the corresponding inverted
//! file entry is located".
//!
//! * [`InvertedFile`] — builder, random entry fetch (HVNL's access path,
//!   `⌈J⌉` random pages per fetch) and sequential scan (VVM's access path,
//!   `I` pages, one seek).
//! * [`BTreeFile`] — a real paged B+tree with bulk-load, search, inserts
//!   with node splits, and [`BTreeFile::load_leaves`] for the paper's
//!   "read the whole tree once" step (cost `Bt`).

pub mod btree;
pub mod codec;
pub mod delta;
pub mod file;

pub use btree::{BTreeFile, Dictionary, TermEntry};
pub use codec::PostingCodec;
pub use delta::{DeltaOverlay, FlushedDelta};
pub use file::{EntryMeta, EntryScanner, InvertedFile};
