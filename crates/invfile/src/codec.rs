//! Posting-list codecs.
//!
//! The paper fixes the on-disk cell at `|d#| + |w| = 5` bytes (section 3)
//! and derives every size — `S`, `D`, `J`, `I` — from it. Real IR systems
//! compress posting lists: document numbers within an entry are ascending,
//! so storing *gaps* as variable-length integers shrinks entries by 2-3×,
//! which shrinks `J` and `I` and shifts the cost trade-offs towards the
//! inverted-file algorithms (HVNL's `⌈J⌉·α` fetches and VVM's `I1 + I2`
//! scans both drop). This module provides:
//!
//! * [`PostingCodec::Fixed5`] — the paper's layout, byte-for-byte;
//! * [`PostingCodec::VarintGap`] — LEB128 varint deltas for document
//!   numbers plus varint weights.
//!
//! The inverted-file builder accepts either codec; entry spans are byte
//! ranges, so nothing above the codec changes.

use textjoin_common::{DocId, Error, ICell, Result, CELL_BYTES};

/// How an inverted-file entry's i-cells are serialized.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PostingCodec {
    /// The paper's fixed 5-byte cells (3-byte document number, 2-byte
    /// weight).
    #[default]
    Fixed5,
    /// Delta-encoded document numbers and weights as LEB128 varints —
    /// the standard IR compression (gaps are small for frequent terms,
    /// which is exactly where entries are long).
    VarintGap,
}

impl PostingCodec {
    /// Serializes an entry (i-cells in strictly increasing document order).
    pub fn encode(&self, cells: &[ICell]) -> Vec<u8> {
        match self {
            PostingCodec::Fixed5 => {
                let mut out = Vec::with_capacity(cells.len() * CELL_BYTES);
                for c in cells {
                    out.extend_from_slice(&c.encode());
                }
                out
            }
            PostingCodec::VarintGap => {
                let mut out = Vec::with_capacity(cells.len() * 2);
                let mut prev = 0u32;
                for (i, c) in cells.iter().enumerate() {
                    let gap = if i == 0 {
                        c.doc.raw()
                    } else {
                        c.doc.raw() - prev - 1
                    };
                    prev = c.doc.raw();
                    write_varint(&mut out, gap as u64);
                    write_varint(&mut out, c.weight as u64);
                }
                out
            }
        }
    }

    /// Deserializes an entry.
    pub fn decode(&self, bytes: &[u8]) -> Result<Vec<ICell>> {
        match self {
            PostingCodec::Fixed5 => {
                if !bytes.len().is_multiple_of(CELL_BYTES) {
                    return Err(Error::Corrupt(
                        "entry byte length not a multiple of the cell size".into(),
                    ));
                }
                Ok(bytes
                    .chunks_exact(CELL_BYTES)
                    .map(|chunk| ICell::decode(chunk.try_into().expect("5-byte chunk")))
                    .collect())
            }
            PostingCodec::VarintGap => {
                let mut cells = Vec::new();
                let mut pos = 0usize;
                let mut prev: Option<u32> = None;
                while pos < bytes.len() {
                    let (gap, n) = read_varint(&bytes[pos..])?;
                    pos += n;
                    let (weight, n) = read_varint(&bytes[pos..])?;
                    pos += n;
                    let doc = match prev {
                        None => gap as u32,
                        Some(p) => p
                            .checked_add(gap as u32)
                            .and_then(|v| v.checked_add(1))
                            .ok_or_else(|| Error::Corrupt("document gap overflow".into()))?,
                    };
                    prev = Some(doc);
                    if weight > u16::MAX as u64 {
                        return Err(Error::Corrupt("weight exceeds 16 bits".into()));
                    }
                    cells.push(ICell::new(DocId::new(doc), weight as u16));
                }
                Ok(cells)
            }
        }
    }

    /// Serialized size of an entry in bytes, without materialising it.
    pub fn encoded_len(&self, cells: &[ICell]) -> usize {
        match self {
            PostingCodec::Fixed5 => cells.len() * CELL_BYTES,
            PostingCodec::VarintGap => {
                let mut len = 0usize;
                let mut prev = 0u32;
                for (i, c) in cells.iter().enumerate() {
                    let gap = if i == 0 {
                        c.doc.raw()
                    } else {
                        c.doc.raw() - prev - 1
                    };
                    prev = c.doc.raw();
                    len += varint_len(gap as u64) + varint_len(c.weight as u64);
                }
                len
            }
        }
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8]) -> Result<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        if shift >= 64 {
            return Err(Error::Corrupt("varint too long".into()));
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(Error::Corrupt("truncated varint".into()))
}

fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cells(pairs: &[(u32, u16)]) -> Vec<ICell> {
        pairs
            .iter()
            .map(|&(d, w)| ICell::new(DocId::new(d), w))
            .collect()
    }

    #[test]
    fn fixed5_matches_the_papers_size() {
        let entry = cells(&[(1, 2), (5, 1), (100, 7)]);
        let codec = PostingCodec::Fixed5;
        let bytes = codec.encode(&entry);
        assert_eq!(bytes.len(), 15);
        assert_eq!(codec.encoded_len(&entry), 15);
        assert_eq!(codec.decode(&bytes).unwrap(), entry);
    }

    #[test]
    fn varint_gap_round_trips_and_compresses_dense_entries() {
        // A dense entry (every document contains the term): gaps are 0, so
        // each cell costs ~2 bytes instead of 5.
        let entry: Vec<ICell> = (0..1000u32).map(|d| ICell::new(DocId::new(d), 1)).collect();
        let codec = PostingCodec::VarintGap;
        let bytes = codec.encode(&entry);
        assert_eq!(codec.decode(&bytes).unwrap(), entry);
        assert_eq!(bytes.len(), codec.encoded_len(&entry));
        assert!(
            bytes.len() * 2 < entry.len() * CELL_BYTES,
            "dense entry should compress >2×: {} vs {}",
            bytes.len(),
            entry.len() * CELL_BYTES
        );
    }

    #[test]
    fn varint_gap_handles_sparse_entries_and_big_ids() {
        let entry = cells(&[(0, 65535), (1 << 23, 1), ((1 << 24) - 1, 9)]);
        let codec = PostingCodec::VarintGap;
        assert_eq!(codec.decode(&codec.encode(&entry)).unwrap(), entry);
    }

    #[test]
    fn decode_rejects_corruption() {
        assert!(PostingCodec::Fixed5.decode(&[1, 2, 3]).is_err());
        // Truncated varint (continuation bit set, no next byte).
        assert!(PostingCodec::VarintGap.decode(&[0x80]).is_err());
        // Weight too large for 16 bits.
        let mut bytes = Vec::new();
        write_varint(&mut bytes, 0);
        write_varint(&mut bytes, 1 << 20);
        assert!(PostingCodec::VarintGap.decode(&bytes).is_err());
    }

    #[test]
    fn varint_primitives() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "len for {v}");
            let (back, n) = read_varint(&buf).unwrap();
            assert_eq!((back, n), (v, buf.len()));
        }
    }

    proptest! {
        #[test]
        fn prop_codecs_round_trip(
            raw in proptest::collection::btree_map(0u32..(1 << 24), 1u16..1000, 0..200)
        ) {
            let entry: Vec<ICell> =
                raw.into_iter().map(|(d, w)| ICell::new(DocId::new(d), w)).collect();
            for codec in [PostingCodec::Fixed5, PostingCodec::VarintGap] {
                let bytes = codec.encode(&entry);
                prop_assert_eq!(bytes.len(), codec.encoded_len(&entry));
                prop_assert_eq!(codec.decode(&bytes).unwrap(), entry.clone());
            }
        }

        #[test]
        fn prop_varint_never_larger_than_fixed_plus_slack(
            raw in proptest::collection::btree_map(0u32..100_000, 1u16..10, 1..300)
        ) {
            // With small weights and ids, varint-gap always wins or ties.
            let entry: Vec<ICell> =
                raw.into_iter().map(|(d, w)| ICell::new(DocId::new(d), w)).collect();
            let varint = PostingCodec::VarintGap.encoded_len(&entry);
            let fixed = PostingCodec::Fixed5.encoded_len(&entry);
            prop_assert!(varint <= fixed, "varint {varint} > fixed {fixed}");
        }
    }
}
