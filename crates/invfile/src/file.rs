//! The inverted file: tightly packed entries in term-number order.
//!
//! For each term of a collection, the inverted file holds an entry — a list
//! of i-cells `(d#, w)` in increasing document order (section 3). Entries
//! are stored in consecutive locations in ascending term order, so
//!
//! * VVM can merge two inverted files with **one sequential scan each**
//!   (the "very much like the merge phase of sort merge" property of
//!   section 4.3), and
//! * HVNL can fetch the entry for one term at the cost of `⌈J⌉` random
//!   page reads after locating it through the B+tree.

use crate::btree::{BTreeFile, TermEntry};
use crate::codec::PostingCodec;
use std::collections::HashMap;
use std::sync::Arc;
use textjoin_collection::Collection;
use textjoin_common::{ICell, Result, TermId};
use textjoin_storage::{
    ByteSpan, DiskSim, FileId, PageKind, PrefetchMetrics, PrefetchStats, Prefetcher,
};

/// Directory record of one inverted-file entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntryMeta {
    /// The entry's term.
    pub term: TermId,
    /// Where the entry's i-cells live.
    pub span: ByteSpan,
    /// Document frequency (number of i-cells).
    pub doc_freq: u32,
}

/// An inverted file over one collection, with its B+tree dictionary.
pub struct InvertedFile {
    disk: Arc<DiskSim>,
    file: FileId,
    directory: Vec<EntryMeta>,
    btree: BTreeFile,
    total_bytes: u64,
    codec: PostingCodec,
}

impl InvertedFile {
    /// Builds the inverted file (and its B+tree) for a collection by
    /// scanning the documents once. Files are named `<name>.inv` and
    /// `<name>.btree`.
    pub fn build(disk: Arc<DiskSim>, name: &str, collection: &Collection) -> Result<Self> {
        Self::build_with(disk, name, collection, PostingCodec::Fixed5)
    }

    /// Like [`build`](Self::build) with an explicit posting codec —
    /// [`PostingCodec::VarintGap`] shrinks entries (and with them `J` and
    /// `I`), shifting the cost trade-offs towards HVNL and VVM.
    pub fn build_with(
        disk: Arc<DiskSim>,
        name: &str,
        collection: &Collection,
        codec: PostingCodec,
    ) -> Result<Self> {
        let mut postings: HashMap<TermId, Vec<ICell>> = HashMap::new();
        for item in collection.store().scan() {
            let (doc_id, doc) = item?;
            for cell in doc.cells() {
                postings
                    .entry(cell.term)
                    .or_default()
                    .push(ICell::new(doc_id, cell.weight));
            }
        }
        Self::from_postings_with(disk, name, postings, codec)
    }

    /// Builds an inverted file directly from a postings map (documents per
    /// term must have been appended in increasing document order, which a
    /// scan guarantees).
    pub fn from_postings(
        disk: Arc<DiskSim>,
        name: &str,
        postings: HashMap<TermId, Vec<ICell>>,
    ) -> Result<Self> {
        Self::from_postings_with(disk, name, postings, PostingCodec::Fixed5)
    }

    /// [`from_postings`](Self::from_postings) with an explicit codec.
    pub fn from_postings_with(
        disk: Arc<DiskSim>,
        name: &str,
        postings: HashMap<TermId, Vec<ICell>>,
        codec: PostingCodec,
    ) -> Result<Self> {
        let mut terms: Vec<TermId> = postings.keys().copied().collect();
        terms.sort();

        let file = disk.create_file_with_kind(&format!("{name}.inv"), PageKind::Postings)?;
        let page_size = disk.page_size();
        let mut directory = Vec::with_capacity(terms.len());
        let mut dict = Vec::with_capacity(terms.len());
        let mut page_buf: Vec<u8> = Vec::with_capacity(page_size);
        let mut written: u64 = 0;

        for term in terms {
            let cells = &postings[&term];
            debug_assert!(
                cells.windows(2).all(|w| w[0].doc < w[1].doc),
                "i-cells must be strictly increasing by document"
            );
            let offset = written + page_buf.len() as u64;
            let bytes = codec.encode(cells);
            let ordinal = directory.len() as u32;
            directory.push(EntryMeta {
                term,
                span: ByteSpan::new(offset, bytes.len() as u64),
                doc_freq: cells.len() as u32,
            });
            dict.push((
                term,
                TermEntry {
                    ordinal,
                    doc_freq: cells.len().min(u16::MAX as usize) as u16,
                },
            ));
            let mut rest: &[u8] = &bytes;
            while !rest.is_empty() {
                let room = page_size - page_buf.len();
                let take = room.min(rest.len());
                page_buf.extend_from_slice(&rest[..take]);
                rest = &rest[take..];
                if page_buf.len() == page_size {
                    disk.append_page(file, &page_buf)?;
                    written += page_size as u64;
                    page_buf.clear();
                }
            }
        }
        if !page_buf.is_empty() {
            // Zero-pad the partial tail page (the disk takes exactly one
            // page per write) but keep the logical byte count.
            let tail = page_buf.len() as u64;
            page_buf.resize(page_size, 0);
            disk.append_page(file, &page_buf)?;
            written += tail;
        }

        let btree = BTreeFile::bulk_load(Arc::clone(&disk), &format!("{name}.btree"), &dict)?;
        Ok(Self {
            disk,
            file,
            directory,
            btree,
            total_bytes: written,
            codec,
        })
    }

    /// Reassembles an inverted file from already-persisted parts — the
    /// recovery path: the entry pages are on disk in `file`, the directory
    /// was loaded from a persisted catalog, the tree was reopened with
    /// [`BTreeFile::from_parts`].
    pub fn from_parts(
        disk: Arc<DiskSim>,
        file: FileId,
        directory: Vec<EntryMeta>,
        btree: BTreeFile,
        total_bytes: u64,
        codec: PostingCodec,
    ) -> Self {
        Self {
            disk,
            file,
            directory,
            btree,
            total_bytes,
            codec,
        }
    }

    /// The full entry directory, in term order (for persisting).
    pub fn directory(&self) -> &[EntryMeta] {
        &self.directory
    }

    /// Logical bytes of all entries (excludes tail-page padding).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Ordinal of the entry for `term`, if present (binary search over the
    /// term-ordered directory; no I/O).
    pub fn find_term(&self, term: TermId) -> Option<u32> {
        self.directory
            .binary_search_by_key(&term, |m| m.term)
            .ok()
            .map(|i| i as u32)
    }

    /// First ordinal whose term is `>= term` (for converting term bounds to
    /// ordinal ranges when partitioning the file).
    pub fn ordinal_at_or_after(&self, term: TermId) -> u32 {
        self.directory.partition_point(|m| m.term < term) as u32
    }

    /// The posting codec entries are stored with.
    pub fn codec(&self) -> PostingCodec {
        self.codec
    }

    /// The simulated disk.
    pub fn disk(&self) -> &Arc<DiskSim> {
        &self.disk
    }

    /// The entry file.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// The B+tree dictionary file.
    pub fn btree(&self) -> &BTreeFile {
        &self.btree
    }

    /// `T` — number of entries (distinct terms).
    pub fn num_entries(&self) -> u64 {
        self.directory.len() as u64
    }

    /// `I` — pages occupied by the entries (tightly packed).
    pub fn num_pages(&self) -> u64 {
        self.total_bytes.div_ceil(self.disk.page_size() as u64)
    }

    /// `J` — measured average entry size in pages.
    pub fn avg_entry_pages(&self) -> f64 {
        if self.directory.is_empty() {
            0.0
        } else {
            self.total_bytes as f64 / (self.disk.page_size() as f64 * self.directory.len() as f64)
        }
    }

    /// Directory record by ordinal.
    pub fn meta(&self, ordinal: u32) -> &EntryMeta {
        &self.directory[ordinal as usize]
    }

    /// Pages a random fetch of entry `ordinal` touches (`⌈J⌉` on average).
    pub fn entry_pages(&self, ordinal: u32) -> u64 {
        self.meta(ordinal).span.num_pages(self.disk.page_size())
    }

    /// Bytes of entry `ordinal`, for memory accounting of HVNL's cache.
    pub fn entry_bytes(&self, ordinal: u32) -> u64 {
        self.meta(ordinal).span.len
    }

    /// Fetches one entry at the random-I/O rate (`⌈J⌉·α`): the access
    /// pattern of HVNL (section 5.2).
    pub fn read_entry(&self, ordinal: u32) -> Result<Vec<ICell>> {
        let meta = self.meta(ordinal);
        let page_size = self.disk.page_size();
        let (first, n) = meta.span.page_range(page_size);
        let pages = self.disk.read_run(self.file, first, n)?;
        decode_entry(self.codec, &pages, meta.span, first, page_size)
    }

    /// Scans the whole inverted file sequentially in term order — the
    /// access pattern of VVM (cost `I`, one seek).
    pub fn scan(&self) -> EntryScanner<'_> {
        self.scan_with_prefetch(None)
    }

    /// [`scan`](Self::scan) with prefetch counters mirrored into an
    /// observability registry.
    pub fn scan_with_prefetch(&self, metrics: Option<PrefetchMetrics>) -> EntryScanner<'_> {
        self.scan_range_with_prefetch(0, self.num_entries() as u32, metrics)
    }

    /// Scans the half-open ordinal range `[start, end)` sequentially — one
    /// term-partition of the file, as read by a parallel VVM worker. The
    /// readahead window is clamped to the partition's last page so workers
    /// never prefetch into a neighbour's territory.
    pub fn scan_range(&self, start: u32, end: u32) -> EntryScanner<'_> {
        self.scan_range_with_prefetch(start, end, None)
    }

    /// [`scan_range`](Self::scan_range) with mirrored prefetch counters.
    pub fn scan_range_with_prefetch(
        &self,
        start: u32,
        end: u32,
        metrics: Option<PrefetchMetrics>,
    ) -> EntryScanner<'_> {
        debug_assert!(start <= end && end as u64 <= self.num_entries());
        let end_page = if end > start {
            let meta = self.meta(end - 1);
            let (first, n) = meta.span.page_range(self.disk.page_size());
            first + n
        } else {
            0
        };
        EntryScanner {
            inv: self,
            next_ordinal: start,
            end_ordinal: end,
            prefetcher: Prefetcher::new(&self.disk, self.file, end_page).with_metrics(metrics),
        }
    }
}

fn decode_entry(
    codec: PostingCodec,
    pages: &[Arc<[u8]>],
    span: ByteSpan,
    first: u64,
    page_size: usize,
) -> Result<Vec<ICell>> {
    let mut bytes = Vec::with_capacity(span.len as usize);
    let mut remaining = span.len as usize;
    let mut offset = (span.offset - first * page_size as u64) as usize;
    for page in pages {
        if remaining == 0 {
            break;
        }
        let take = remaining.min(page_size - offset);
        bytes.extend_from_slice(&page[offset..offset + take]);
        remaining -= take;
        offset = 0;
    }
    codec.decode(&bytes)
}

/// Sequential scanner over an inverted file (or an ordinal sub-range of
/// it), yielding `(TermId, Vec<ICell>)` in increasing term order. Pages are
/// pulled through a [`Prefetcher`], so adjacent entry reads coalesce into
/// windowed scan-priced batches.
pub struct EntryScanner<'a> {
    inv: &'a InvertedFile,
    next_ordinal: u32,
    end_ordinal: u32,
    prefetcher: Prefetcher<'a>,
}

impl EntryScanner<'_> {
    fn page(&mut self, page_no: u64) -> Result<Arc<[u8]>> {
        self.prefetcher.get(page_no)
    }

    /// Readahead counters accumulated so far.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetcher.stats()
    }
}

impl Iterator for EntryScanner<'_> {
    type Item = Result<(TermId, Vec<ICell>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_ordinal >= self.end_ordinal {
            return None;
        }
        let meta = *self.inv.meta(self.next_ordinal);
        self.next_ordinal += 1;
        let page_size = self.inv.disk.page_size();
        let (first, n) = meta.span.page_range(page_size);
        let mut pages = Vec::with_capacity(n as usize);
        for page_no in first..first + n {
            match self.page(page_no) {
                Ok(p) => pages.push(p),
                Err(e) => return Some(Err(e)),
            }
        }
        Some(
            decode_entry(self.inv.codec, &pages, meta.span, first, page_size)
                .map(|cells| (meta.term, cells)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use textjoin_collection::Document;

    fn build_fixture(page_size: usize) -> (Arc<DiskSim>, InvertedFile, Vec<Document>) {
        let disk = Arc::new(DiskSim::new(page_size));
        let docs = vec![
            Document::from_term_counts([(TermId::new(1), 2u32), (TermId::new(3), 1)]),
            Document::from_term_counts([(TermId::new(1), 1u32), (TermId::new(2), 4)]),
            Document::from_term_counts([(TermId::new(3), 5u32)]),
        ];
        let coll = Collection::build(Arc::clone(&disk), "c", docs.clone()).unwrap();
        let inv = InvertedFile::build(Arc::clone(&disk), "c", &coll).unwrap();
        (disk, inv, docs)
    }

    #[test]
    fn entries_are_sorted_by_term_with_correct_postings() {
        let (_, inv, _) = build_fixture(64);
        assert_eq!(inv.num_entries(), 3);
        let all: Vec<(TermId, Vec<ICell>)> = inv.scan().map(|r| r.unwrap()).collect();
        let terms: Vec<u32> = all.iter().map(|(t, _)| t.raw()).collect();
        assert_eq!(terms, vec![1, 2, 3]);
        // Term 1 appears in docs 0 (w=2) and 1 (w=1).
        assert_eq!(
            all[0].1,
            vec![
                ICell::new(textjoin_common::DocId::new(0), 2),
                ICell::new(textjoin_common::DocId::new(1), 1)
            ]
        );
        // Term 3 appears in docs 0 (w=1) and 2 (w=5).
        assert_eq!(all[2].1.len(), 2);
        assert_eq!(all[2].1[1].weight, 5);
    }

    #[test]
    fn btree_locates_every_entry() {
        let (_, inv, _) = build_fixture(64);
        let dict = inv.btree().load_leaves().unwrap();
        for ordinal in 0..inv.num_entries() as u32 {
            let meta = inv.meta(ordinal);
            let hit = dict.lookup(meta.term).expect("term in dictionary");
            assert_eq!(hit.ordinal, ordinal);
            assert_eq!(hit.doc_freq as u32, meta.doc_freq);
        }
        assert_eq!(dict.lookup(TermId::new(999)), None);
    }

    #[test]
    fn random_entry_fetch_is_charged_at_random_rate() {
        let (disk, inv, _) = build_fixture(16); // tiny pages force multi-page entries
        disk.reset_stats();
        disk.reset_head();
        let cells = inv.read_entry(0).unwrap();
        assert_eq!(cells.len(), 2);
        let s = disk.stats();
        assert_eq!(s.rand_reads, inv.entry_pages(0));
        assert_eq!(s.seq_reads, 0);
    }

    #[test]
    fn full_scan_costs_i_pages_with_one_seek() {
        let (disk, inv, _) = build_fixture(16);
        disk.reset_stats();
        disk.reset_head();
        let n = inv.scan().count();
        assert_eq!(n as u64, inv.num_entries());
        let s = disk.stats();
        assert_eq!(s.total_reads(), inv.num_pages());
        assert_eq!(s.rand_reads, 1);
    }

    #[test]
    fn inverted_file_size_tracks_collection_size() {
        // Section 3: document numbers and term numbers have the same size,
        // so the inverted file's total bytes equal the collection's.
        let (_, inv, docs) = build_fixture(64);
        let doc_bytes: u64 = docs.iter().map(|d| d.size_bytes()).sum();
        assert_eq!(inv.total_bytes, doc_bytes);
    }

    #[test]
    fn empty_collection_gives_empty_inverted_file() {
        let disk = Arc::new(DiskSim::new(64));
        let coll = Collection::build(Arc::clone(&disk), "e", Vec::<Document>::new()).unwrap();
        let inv = InvertedFile::build(Arc::clone(&disk), "e", &coll).unwrap();
        assert_eq!(inv.num_entries(), 0);
        assert_eq!(inv.num_pages(), 0);
        assert_eq!(inv.scan().count(), 0);
        assert_eq!(inv.avg_entry_pages(), 0.0);
    }

    #[test]
    fn varint_codec_shrinks_the_file_and_preserves_content() {
        let disk = Arc::new(DiskSim::new(4096));
        // Dense postings (small gaps) compress well.
        let docs: Vec<Document> = (0..200u32)
            .map(|i| {
                Document::from_term_counts(
                    (0..20u32).map(move |t| (TermId::new((i + t) % 40), 1u32)),
                )
            })
            .collect();
        let coll = Collection::build(Arc::clone(&disk), "c", docs).unwrap();
        let fixed = InvertedFile::build_with(
            Arc::clone(&disk),
            "fixed",
            &coll,
            crate::codec::PostingCodec::Fixed5,
        )
        .unwrap();
        let varint = InvertedFile::build_with(
            Arc::clone(&disk),
            "varint",
            &coll,
            crate::codec::PostingCodec::VarintGap,
        )
        .unwrap();
        assert!(
            varint.total_bytes * 2 < fixed.total_bytes,
            "expected >2× compression"
        );
        // Identical logical content, entry by entry.
        let a: Vec<_> = fixed.scan().map(|r| r.unwrap()).collect();
        let b: Vec<_> = varint.scan().map(|r| r.unwrap()).collect();
        assert_eq!(a, b);
        for ordinal in 0..fixed.num_entries() as u32 {
            assert_eq!(
                fixed.read_entry(ordinal).unwrap(),
                varint.read_entry(ordinal).unwrap()
            );
        }
    }

    fn big_fixture(page_size: usize) -> (Arc<DiskSim>, InvertedFile) {
        let disk = Arc::new(DiskSim::new(page_size));
        let docs: Vec<Document> = (0..60u32)
            .map(|i| {
                Document::from_term_counts(
                    (0..8u32).map(move |t| (TermId::new((i + t) % 30), 2u32)),
                )
            })
            .collect();
        let coll = Collection::build(Arc::clone(&disk), "big", docs).unwrap();
        let inv = InvertedFile::build(Arc::clone(&disk), "big", &coll).unwrap();
        (disk, inv)
    }

    #[test]
    fn prefetching_scan_reads_each_page_exactly_once() {
        let (disk, inv) = big_fixture(64);
        assert!(inv.num_pages() > 8, "fixture must exceed one window");
        disk.reset_stats();
        disk.reset_head();
        let mut scanner = inv.scan();
        assert_eq!(scanner.by_ref().count() as u64, inv.num_entries());
        let prefetch = scanner.prefetch_stats();
        let s = disk.stats();
        assert_eq!(s.total_reads(), inv.num_pages());
        assert_eq!(s.rand_reads, 1);
        assert!(prefetch.hits > 0, "readahead should serve most of the scan");
        assert_eq!(prefetch.wasted, 0);
    }

    #[test]
    fn scan_range_partitions_cover_the_full_scan() {
        let (disk, inv) = big_fixture(64);
        let full: Vec<(TermId, Vec<ICell>)> = inv.scan().map(|r| r.unwrap()).collect();
        let t = inv.num_entries() as u32;
        for parts in [1u32, 2, 3, 4] {
            let mut stitched = Vec::new();
            for p in 0..parts {
                let start = t * p / parts;
                let end = t * (p + 1) / parts;
                stitched.extend(inv.scan_range(start, end).map(|r| r.unwrap()));
            }
            assert_eq!(stitched, full, "{parts} partitions");
        }
        // Each partition is a scan: pages read ≤ I + one shared boundary
        // page per split, seeks ≤ one per partition.
        disk.reset_stats();
        disk.reset_head();
        let parts = 3u32;
        for p in 0..parts {
            let start = t * p / parts;
            let end = t * (p + 1) / parts;
            assert_eq!(
                inv.scan_range(start, end).count() as u64,
                (end - start) as u64
            );
        }
        let s = disk.stats();
        assert!(s.total_reads() <= inv.num_pages() + (parts as u64 - 1));
        assert!(s.rand_reads <= parts as u64);
    }

    #[test]
    fn empty_scan_range_yields_nothing_and_reads_nothing() {
        let (disk, inv) = big_fixture(64);
        disk.reset_stats();
        assert_eq!(inv.scan_range(2, 2).count(), 0);
        assert_eq!(disk.stats().total_reads(), 0);
    }

    #[test]
    fn scan_prefetch_metrics_are_mirrored() {
        use textjoin_obs::Registry;
        let (_, inv) = big_fixture(64);
        let registry = Registry::new();
        let metrics = PrefetchMetrics::register(&registry, "inv1");
        let n = inv.scan_with_prefetch(Some(metrics)).count() as u64;
        assert_eq!(n, inv.num_entries());
        let text = registry.to_prometheus_text();
        assert!(text.contains("prefetch_issued"), "{text}");
        let issued = registry.counter("prefetch.issued", "inv1").get();
        let hits = registry.counter("prefetch.hits", "inv1").get();
        assert!(issued > 0 && hits > 0, "issued={issued} hits={hits}");
    }

    #[test]
    fn avg_entry_pages_matches_bytes() {
        let (_, inv, _) = build_fixture(16);
        let expect = inv.total_bytes as f64 / (16.0 * inv.num_entries() as f64);
        assert!((inv.avg_entry_pages() - expect).abs() < 1e-12);
    }
}
