//! Base+delta overlays for incrementally-updated collections.
//!
//! The paper's storage model (section 3) is bulk-loaded and immutable:
//! documents packed in consecutive storage locations, inverted-file entries
//! packed in term order. An updatable collection keeps that base immutable
//! and accumulates changes in a [`DeltaOverlay`]:
//!
//! * **inserts** land in an in-memory *tail* (documents plus their
//!   postings), and are periodically flushed to packed *side files* — a
//!   sparse-id [`DocumentStore`] and a small [`InvertedFile`] holding only
//!   the inserted documents;
//! * **deletes** are a tombstone set of document numbers masking both base
//!   and delta at read time — no page of the base is ever rewritten.
//!
//! Document numbers are never reused and grow monotonically, so for any
//! term the concatenation *base entry ++ flushed entry ++ tail entry* is
//! already in ascending document order — executors merge the three layers
//! without sorting. A background merge (the `textjoin-live` crate) folds
//! the overlay back into a pristine base; until then the overlay's extra
//! pages and tombstones are the *fragmentation* the cost model charges for.

use crate::file::InvertedFile;
use std::collections::{BTreeMap, BTreeSet};
use textjoin_collection::{Document, DocumentStore};
use textjoin_common::{DocId, FragStats, ICell, Result, TermId};

/// The flushed (on-disk) part of a delta: side files holding previously
/// tailed inserts, read through the simulated disk like any base file.
pub struct FlushedDelta {
    /// Sparse-id store of the flushed inserted documents.
    pub store: DocumentStore,
    /// Inverted file over exactly those documents.
    pub inv: InvertedFile,
}

/// Pending mutations over an immutable base: flushed side files, an
/// in-memory tail, and a tombstone set.
#[derive(Default)]
pub struct DeltaOverlay {
    deleted: BTreeSet<u32>,
    flushed: Option<FlushedDelta>,
    tail_docs: BTreeMap<u32, Document>,
    tail_postings: BTreeMap<TermId, Vec<ICell>>,
}

impl DeltaOverlay {
    /// An empty overlay (a pristine collection).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the overlay holds no mutations at all.
    pub fn is_empty(&self) -> bool {
        self.deleted.is_empty() && self.flushed.is_none() && self.tail_docs.is_empty()
    }

    /// Records an insert in the tail. `id` must exceed every document
    /// number already present (base, flushed or tail) — the caller hands
    /// out monotonically increasing numbers and never reuses them.
    pub fn insert_tail(&mut self, id: DocId, doc: Document) {
        debug_assert!(
            self.tail_docs
                .last_key_value()
                .is_none_or(|(&k, _)| k < id.raw()),
            "tail ids must ascend"
        );
        for cell in doc.cells() {
            self.tail_postings
                .entry(cell.term)
                .or_default()
                .push(ICell::new(id, cell.weight));
        }
        self.tail_docs.insert(id.raw(), doc);
    }

    /// Records a delete: a tombstone masking `id` in every layer.
    pub fn delete(&mut self, id: DocId) {
        self.deleted.insert(id.raw());
    }

    /// Whether `id` is tombstoned.
    pub fn is_deleted(&self, id: DocId) -> bool {
        self.deleted.contains(&id.raw())
    }

    /// The tombstone set (document numbers).
    pub fn deleted_ids(&self) -> &BTreeSet<u32> {
        &self.deleted
    }

    /// Installs the flushed side files (replacing any previous ones) and
    /// clears the tail they absorbed.
    pub fn set_flushed(&mut self, flushed: FlushedDelta) {
        self.flushed = Some(flushed);
        self.tail_docs.clear();
        self.tail_postings.clear();
    }

    /// The flushed side files, if any.
    pub fn flushed(&self) -> Option<&FlushedDelta> {
        self.flushed.as_ref()
    }

    /// The in-memory tail, in ascending document order.
    pub fn tail_docs(&self) -> &BTreeMap<u32, Document> {
        &self.tail_docs
    }

    /// Number of insertions held (flushed + tail), including ones later
    /// tombstoned.
    pub fn num_insertions(&self) -> u64 {
        let flushed = self.flushed.as_ref().map_or(0, |f| f.store.num_docs());
        flushed + self.tail_docs.len() as u64
    }

    /// Pages of the flushed document side file (a fragmentation input —
    /// the tail is memory-resident and free).
    pub fn doc_pages(&self) -> u64 {
        self.flushed.as_ref().map_or(0, |f| f.store.num_pages())
    }

    /// Pages of the flushed inverted side file (a fragmentation input).
    pub fn inv_pages(&self) -> u64 {
        self.flushed.as_ref().map_or(0, |f| f.inv.num_pages())
    }

    /// Fragmentation statistics for the cost model: the flushed side-file
    /// pages every scan must pay for, and the tombstoned fraction of all
    /// stored documents (`base_docs` plus insertions). The in-memory tail
    /// costs no I/O and so contributes no pages.
    pub fn frag_stats(&self, base_docs: u64) -> FragStats {
        let stored = base_docs + self.num_insertions();
        FragStats {
            doc_delta_pages: self.doc_pages(),
            inv_delta_pages: self.inv_pages(),
            tombstone_ratio: if stored == 0 {
                0.0
            } else {
                self.deleted.len() as f64 / stored as f64
            },
        }
    }

    /// All live (non-tombstoned) inserted documents, ascending by id:
    /// one sequential scan of the flushed side file, then the tail.
    pub fn live_docs(&self) -> Result<Vec<(DocId, Document)>> {
        let mut out = Vec::new();
        if let Some(f) = &self.flushed {
            for item in f.store.scan() {
                let (id, doc) = item?;
                if !self.is_deleted(id) {
                    out.push((id, doc));
                }
            }
        }
        for (&id, doc) in &self.tail_docs {
            if !self.deleted.contains(&id) {
                out.push((DocId::new(id), doc.clone()));
            }
        }
        Ok(out)
    }

    /// Live inserted document numbers, ascending (no I/O).
    pub fn live_ids(&self) -> Vec<DocId> {
        let mut out = Vec::new();
        if let Some(f) = &self.flushed {
            out.extend(
                f.store
                    .doc_ids()
                    .into_iter()
                    .filter(|&d| !self.is_deleted(d)),
            );
        }
        out.extend(
            self.tail_docs
                .keys()
                .filter(|&&id| !self.deleted.contains(&id))
                .map(|&id| DocId::new(id)),
        );
        out
    }

    /// Fetches one inserted document, or `None` if the overlay does not
    /// hold it (tombstoned, or never inserted here). Tail documents are
    /// free; flushed ones cost a random fetch of the side file.
    pub fn doc(&self, id: DocId) -> Result<Option<Document>> {
        if self.is_deleted(id) {
            return Ok(None);
        }
        if let Some(doc) = self.tail_docs.get(&id.raw()) {
            return Ok(Some(doc.clone()));
        }
        if let Some(f) = &self.flushed {
            if f.store.contains(id) {
                return Ok(Some(f.store.read_doc_direct(id)?));
            }
        }
        Ok(None)
    }

    /// The delta postings of one term: flushed entry (a random fetch of
    /// `⌈J⌉` side-file pages, HVNL's access pattern) followed by the tail's
    /// cells — ascending document order by construction. Tombstoned
    /// documents are *not* filtered here; callers mask them exactly as they
    /// mask the base entry.
    pub fn postings_for(&self, term: TermId) -> Result<Vec<ICell>> {
        let mut cells = Vec::new();
        if let Some(f) = &self.flushed {
            if let Some(ordinal) = f.inv.find_term(term) {
                cells = f.inv.read_entry(ordinal)?;
            }
        }
        if let Some(tail) = self.tail_postings.get(&term) {
            cells.extend(tail.iter().copied());
        }
        Ok(cells)
    }

    /// All delta entries with `lo <= term < hi` (`hi = None` = unbounded),
    /// in ascending term order, flushed and tail cells combined per term.
    /// One sequential partial scan of the flushed side file — the access
    /// pattern of (possibly partitioned) VVM.
    pub fn entries_between(&self, lo: u32, hi: Option<u32>) -> Result<Vec<(TermId, Vec<ICell>)>> {
        let mut merged: BTreeMap<TermId, Vec<ICell>> = BTreeMap::new();
        if let Some(f) = &self.flushed {
            let start = f.inv.ordinal_at_or_after(TermId::new(lo));
            let end = match hi {
                Some(h) => f.inv.ordinal_at_or_after(TermId::new(h)),
                None => f.inv.num_entries() as u32,
            };
            for item in f.inv.scan_range(start, end) {
                let (term, cells) = item?;
                merged.insert(term, cells);
            }
        }
        for (&term, cells) in self.tail_postings.range(TermId::new(lo)..) {
            if hi.is_some_and(|h| term.raw() >= h) {
                break;
            }
            merged
                .entry(term)
                .or_default()
                .extend(cells.iter().copied());
        }
        Ok(merged.into_iter().collect())
    }

    /// All delta entries, in term order.
    pub fn entries(&self) -> Result<Vec<(TermId, Vec<ICell>)>> {
        self.entries_between(0, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;
    use textjoin_collection::DocumentStoreBuilder;
    use textjoin_storage::DiskSim;

    fn doc(terms: &[(u32, u16)]) -> Document {
        Document::from_term_counts(terms.iter().map(|&(t, w)| (TermId::new(t), w as u32)))
    }

    fn flush(disk: &Arc<DiskSim>, name: &str, docs: &[(u32, Document)]) -> FlushedDelta {
        let mut b = DocumentStoreBuilder::new(Arc::clone(disk), &format!("{name}.docs")).unwrap();
        let mut postings: HashMap<TermId, Vec<ICell>> = HashMap::new();
        for (id, d) in docs {
            b.add_with_id(DocId::new(*id), d).unwrap();
            for cell in d.cells() {
                postings
                    .entry(cell.term)
                    .or_default()
                    .push(ICell::new(DocId::new(*id), cell.weight));
            }
        }
        let store = b.finish().unwrap();
        let inv = InvertedFile::from_postings(Arc::clone(disk), name, postings).unwrap();
        FlushedDelta { store, inv }
    }

    #[test]
    fn tail_inserts_surface_in_docs_and_postings() {
        let mut overlay = DeltaOverlay::new();
        assert!(overlay.is_empty());
        overlay.insert_tail(DocId::new(10), doc(&[(1, 2), (5, 1)]));
        overlay.insert_tail(DocId::new(11), doc(&[(5, 3)]));
        assert_eq!(overlay.num_insertions(), 2);
        assert_eq!(overlay.live_ids(), vec![DocId::new(10), DocId::new(11)]);
        let p5 = overlay.postings_for(TermId::new(5)).unwrap();
        assert_eq!(
            p5,
            vec![ICell::new(DocId::new(10), 1), ICell::new(DocId::new(11), 3)]
        );
        assert_eq!(overlay.postings_for(TermId::new(9)).unwrap(), vec![]);
        assert_eq!(overlay.doc(DocId::new(11)).unwrap(), Some(doc(&[(5, 3)])));
        assert_eq!(overlay.doc(DocId::new(12)).unwrap(), None);
    }

    #[test]
    fn tombstones_mask_tail_and_lookups() {
        let mut overlay = DeltaOverlay::new();
        overlay.insert_tail(DocId::new(3), doc(&[(1, 1)]));
        overlay.delete(DocId::new(3));
        overlay.delete(DocId::new(0)); // a base doc
        assert!(overlay.is_deleted(DocId::new(0)));
        assert_eq!(overlay.live_ids(), vec![]);
        assert_eq!(overlay.doc(DocId::new(3)).unwrap(), None);
        assert_eq!(overlay.live_docs().unwrap(), vec![]);
        // postings_for does NOT filter — callers mask, same as for base.
        assert_eq!(overlay.postings_for(TermId::new(1)).unwrap().len(), 1);
    }

    #[test]
    fn flushed_and_tail_layers_combine_in_order() {
        let disk = Arc::new(DiskSim::new(64));
        let mut overlay = DeltaOverlay::new();
        overlay.insert_tail(DocId::new(10), doc(&[(1, 2), (2, 1)]));
        overlay.insert_tail(DocId::new(11), doc(&[(2, 4)]));
        // Flush absorbs the tail into side files.
        let f = flush(
            &disk,
            "delta.g1",
            &[(10, doc(&[(1, 2), (2, 1)])), (11, doc(&[(2, 4)]))],
        );
        overlay.set_flushed(f);
        assert!(overlay.tail_docs().is_empty());
        assert!(overlay.doc_pages() > 0);
        assert!(overlay.inv_pages() > 0);
        // New tail entries on top of the flushed layer.
        overlay.insert_tail(DocId::new(12), doc(&[(2, 9), (7, 1)]));

        let p2 = overlay.postings_for(TermId::new(2)).unwrap();
        assert_eq!(
            p2,
            vec![
                ICell::new(DocId::new(10), 1),
                ICell::new(DocId::new(11), 4),
                ICell::new(DocId::new(12), 9)
            ]
        );
        let docs: Vec<DocId> = overlay
            .live_docs()
            .unwrap()
            .into_iter()
            .map(|(d, _)| d)
            .collect();
        assert_eq!(docs, vec![DocId::new(10), DocId::new(11), DocId::new(12)]);
        assert_eq!(
            overlay.doc(DocId::new(10)).unwrap(),
            Some(doc(&[(1, 2), (2, 1)]))
        );

        let entries = overlay.entries().unwrap();
        let terms: Vec<u32> = entries.iter().map(|(t, _)| t.raw()).collect();
        assert_eq!(terms, vec![1, 2, 7]);
        let bounded = overlay.entries_between(2, Some(7)).unwrap();
        assert_eq!(bounded.len(), 1);
        assert_eq!(bounded[0].0, TermId::new(2));
        assert_eq!(bounded[0].1, p2);
    }
}
