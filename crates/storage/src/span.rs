//! Byte spans and their page ranges.
//!
//! Documents and inverted-file entries are tightly packed: a structure's
//! location on disk is a byte offset and length within its file, and reading
//! it touches every page its span overlaps — which is why a randomly fetched
//! inverted entry of average size `J` costs `⌈J⌉` page reads even when the
//! entry occupies a small fraction of a page (section 5.4 calls this out as
//! one of HVNL's handicaps).

use serde::{Deserialize, Serialize};

/// A contiguous byte range within a simulated file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ByteSpan {
    /// Byte offset from the start of the file.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
}

impl ByteSpan {
    /// Creates a span.
    #[inline]
    pub fn new(offset: u64, len: u64) -> Self {
        Self { offset, len }
    }

    /// First page the span overlaps.
    #[inline]
    pub fn first_page(&self, page_size: usize) -> u64 {
        self.offset / page_size as u64
    }

    /// Number of pages the span overlaps (0 for an empty span).
    #[inline]
    pub fn num_pages(&self, page_size: usize) -> u64 {
        if self.len == 0 {
            return 0;
        }
        let first = self.first_page(page_size);
        let last = (self.offset + self.len - 1) / page_size as u64;
        last - first + 1
    }

    /// `(first_page, num_pages)` in one call.
    #[inline]
    pub fn page_range(&self, page_size: usize) -> (u64, u64) {
        (self.first_page(page_size), self.num_pages(page_size))
    }

    /// Byte immediately past the span.
    #[inline]
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn span_within_one_page() {
        let s = ByteSpan::new(10, 20);
        assert_eq!(s.page_range(4096), (0, 1));
        assert_eq!(s.end(), 30);
    }

    #[test]
    fn span_straddling_page_boundary() {
        let s = ByteSpan::new(4090, 10);
        assert_eq!(s.page_range(4096), (0, 2));
    }

    #[test]
    fn span_aligned_to_pages() {
        let s = ByteSpan::new(8192, 4096);
        assert_eq!(s.page_range(4096), (2, 1));
    }

    #[test]
    fn empty_span_touches_no_pages() {
        let s = ByteSpan::new(500, 0);
        assert_eq!(s.num_pages(4096), 0);
    }

    #[test]
    fn small_entry_still_costs_whole_page() {
        // Section 5.4: even when an inverted entry occupies a small fraction
        // of a page, the whole page must be read.
        let s = ByteSpan::new(100, 5);
        assert_eq!(s.num_pages(4096), 1);
    }

    proptest! {
        #[test]
        fn prop_pages_cover_span(offset in 0u64..100_000, len in 1u64..50_000) {
            let s = ByteSpan::new(offset, len);
            let (first, n) = s.page_range(4096);
            // The page range covers every byte of the span and no more than
            // one page of slack on either side.
            prop_assert!(first * 4096 <= offset);
            prop_assert!((first + n) * 4096 >= s.end());
            prop_assert!(offset - first * 4096 < 4096);
            prop_assert!((first + n) * 4096 - s.end() < 4096);
        }
    }
}
