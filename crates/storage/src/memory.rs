//! Byte-level memory budget tracking.
//!
//! The paper's algorithms are all parameterised by the buffer size `B`
//! (pages). Rather than trusting each executor to do its own arithmetic,
//! every in-memory structure (outer document batches, similarity
//! accumulators, the B+tree, cached inverted entries, resident-term lists)
//! charges its bytes against a shared [`MemTracker`] whose capacity is
//! `B · P` bytes. Exceeding the budget is an [`Error::InsufficientMemory`],
//! and the executors' budget-compliance tests assert the high-water mark
//! never passes `B · P`.

use parking_lot::Mutex;
use textjoin_common::{Error, Result, SystemParams};

#[derive(Debug, Default)]
struct Inner {
    used: u64,
    high_water: u64,
}

/// A byte-granular memory budget.
#[derive(Debug)]
pub struct MemTracker {
    capacity: u64,
    page_size: usize,
    inner: Mutex<Inner>,
}

impl MemTracker {
    /// Creates a tracker with a capacity of `params.buffer_pages` pages.
    pub fn new(params: &SystemParams) -> Self {
        Self {
            capacity: params.buffer_bytes(),
            page_size: params.page_size,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Creates a tracker with an explicit byte capacity.
    pub fn with_capacity_bytes(capacity: u64, page_size: usize) -> Self {
        Self {
            capacity,
            page_size,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.inner.lock().used
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        let inner = self.inner.lock();
        self.capacity - inner.used
    }

    /// Largest allocation level ever observed.
    pub fn high_water(&self) -> u64 {
        self.inner.lock().high_water
    }

    /// Claims `bytes`, failing with [`Error::InsufficientMemory`] when the
    /// budget would be exceeded. `context` names the requester for the
    /// error message.
    pub fn allocate(&self, bytes: u64, context: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.used + bytes > self.capacity {
            let page = self.page_size as u64;
            return Err(Error::InsufficientMemory {
                context: context.to_string(),
                required_pages: (inner.used + bytes).div_ceil(page),
                available_pages: self.capacity / page,
            });
        }
        inner.used += bytes;
        inner.high_water = inner.high_water.max(inner.used);
        Ok(())
    }

    /// Returns `bytes` to the budget.
    ///
    /// # Panics
    /// Panics if more is released than was allocated — a sign of broken
    /// bookkeeping in the caller.
    pub fn release(&self, bytes: u64) {
        let mut inner = self.inner.lock();
        assert!(
            inner.used >= bytes,
            "releasing {} bytes but only {} allocated",
            bytes,
            inner.used
        );
        inner.used -= bytes;
    }

    /// Resets usage and the high-water mark.
    pub fn reset(&self) {
        *self.inner.lock() = Inner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use textjoin_common::SystemParams;

    #[test]
    fn capacity_is_pages_times_page_size() {
        let t = MemTracker::new(&SystemParams::paper_base().with_buffer_pages(10));
        assert_eq!(t.capacity(), 10 * 4096);
        assert_eq!(t.available(), 10 * 4096);
    }

    #[test]
    fn allocate_and_release_round_trip() {
        let t = MemTracker::with_capacity_bytes(100, 10);
        t.allocate(60, "a").unwrap();
        t.allocate(40, "b").unwrap();
        assert_eq!(t.used(), 100);
        t.release(50);
        assert_eq!(t.used(), 50);
        assert_eq!(t.high_water(), 100);
    }

    #[test]
    fn over_allocation_fails_with_context() {
        let t = MemTracker::with_capacity_bytes(100, 10);
        t.allocate(90, "warmup").unwrap();
        let err = t.allocate(20, "HVNL entry cache").unwrap_err();
        assert!(err.to_string().contains("HVNL entry cache"));
        // Failed allocation must not consume budget.
        assert_eq!(t.used(), 90);
        t.allocate(10, "fits").unwrap();
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let t = MemTracker::with_capacity_bytes(100, 10);
        t.allocate(10, "x").unwrap();
        t.release(11);
    }

    #[test]
    fn reset_clears_usage_and_high_water() {
        let t = MemTracker::with_capacity_bytes(100, 10);
        t.allocate(80, "x").unwrap();
        t.reset();
        assert_eq!(t.used(), 0);
        assert_eq!(t.high_water(), 0);
    }
}
