//! The simulated disk.
//!
//! A [`DiskSim`] holds a set of named, page-structured files entirely in
//! memory and *accounts* for I/O instead of performing it. The accounting
//! follows section 3 of the paper:
//!
//! * a read run that begins exactly where the previous read on the device
//!   left off is **sequential** — all of its pages cost 1 unit;
//! * any other run is **random** — *all* of its pages cost `α` units. This
//!   matches the paper's `N·⌈S⌉·α` estimate for document-at-a-time access
//!   and `T₂·q·⌈J₁⌉·α` for inverted-entry fetches, both of which charge the
//!   full run at the random rate;
//! * in **interference mode** every run is random: the device is assumed to
//!   serve other obligations between any two of our requests, which is the
//!   worst-case scenario behind the `hhr`, `hvr` and `vvr` formulas.
//!
//! Head positions are tracked **per (thread, file)** — the paper's
//! sequential estimates assume "each document collection is read by a
//! dedicated drive with no or little interference from other I/O requests"
//! (section 5.1), so interleaved scans of two files (e.g. VVM's merge)
//! each stay sequential, and parallel workers scanning partitions of the
//! same file are each assumed to stream from their own drive — they do not
//! perturb each other's sequentiality, matching the parallel cost model's
//! dedicated-drive assumption (and keeping multi-worker page accounting
//! deterministic under scheduling). The shared-device worst case is
//! modeled by interference mode, which is what the `hhr`/`hvr`/`vvr`
//! formulas describe.
//!
//! Reads can optionally cost *time* as well as pages: a
//! [`PageLatency`] (default zero — pure accounting) makes every charged
//! page accrue a simulated service delay, paid by the reading thread as a
//! real sleep outside the locks. Concurrent workers therefore overlap
//! their simulated I/O exactly as parallel drives would, which is what
//! lets the bench harness measure parallel speedup in wall clock even
//! though page data is just memcpys.
//!
//! # Robustness
//!
//! Real devices fail, so the simulator can misbehave on demand:
//!
//! * every page carries an out-of-band header (magic, format version,
//!   [`PageKind`], CRC32 of the payload) stamped on write and verified on
//!   read — corruption surfaces as [`Error::Corrupt`] with file/page
//!   context instead of decoding garbage;
//! * a seeded [`FaultPlan`] injects transient read errors, torn writes,
//!   single-bit flips and latency spikes on chosen
//!   `(file, page, nth-access)` triples;
//! * a [`RetryPolicy`] governs how many times a transient read failure is
//!   re-attempted (each retry re-charged at the random rate) before the
//!   read gives up with [`Error::Io`];
//! * every injected fault, retry and give-up is counted in
//!   [`FaultStats`] and mirrored into attached [`DiskMetrics`].

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;
use textjoin_common::{Error, Result};
use textjoin_obs::{Counter, Histogram, Registry, LATENCY_BOUNDS_NS};

/// On-page format version. Version 1 was the raw payload-only layout;
/// version 2 added the out-of-band page header (magic + kind + CRC32).
pub const PAGE_FORMAT_VERSION: u8 = 2;

/// Magic bytes opening every page header.
pub const PAGE_MAGIC: [u8; 2] = *b"TJ";

/// Size of the out-of-band page header in bytes: 2 magic, 1 version,
/// 1 kind, 4 CRC32 (little-endian). Stored *next to* the page, not inside
/// it, so payload capacity — and hence every page-count formula in the
/// cost model — is unchanged.
pub const PAGE_HEADER_BYTES: usize = 8;

/// What a file's pages hold. Stamped into every page header on write and
/// checked on read, so a page that wanders between files (or a corrupted
/// kind byte) is caught before a codec sees it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(u8)]
pub enum PageKind {
    /// Unstructured payload (tests, scratch files).
    #[default]
    Raw = 0,
    /// Packed document store pages.
    Documents = 1,
    /// Inverted-file posting pages.
    Postings = 2,
    /// B+tree dictionary nodes.
    BTree = 3,
}

impl PageKind {
    fn from_u8(v: u8) -> Option<PageKind> {
        match v {
            0 => Some(PageKind::Raw),
            1 => Some(PageKind::Documents),
            2 => Some(PageKind::Postings),
            3 => Some(PageKind::BTree),
            _ => None,
        }
    }
}

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE polynomial) over `data` — the checksum stored in every
/// page header.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn make_header(kind: PageKind, payload: &[u8]) -> [u8; PAGE_HEADER_BYTES] {
    let crc = crc32(payload).to_le_bytes();
    [
        PAGE_MAGIC[0],
        PAGE_MAGIC[1],
        PAGE_FORMAT_VERSION,
        kind as u8,
        crc[0],
        crc[1],
        crc[2],
        crc[3],
    ]
}

/// Identifier of a file within a [`DiskSim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FileId(u32);

impl FileId {
    /// The raw index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// Cumulative I/O counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read at the sequential rate.
    pub seq_reads: u64,
    /// Pages read at the random rate.
    pub rand_reads: u64,
    /// Pages written (always sequential appends in this workspace).
    pub writes: u64,
}

impl IoStats {
    /// Total pages read.
    #[inline]
    pub fn total_reads(&self) -> u64 {
        self.seq_reads + self.rand_reads
    }

    /// The paper's cost metric: sequential pages cost 1, random pages `α`.
    #[inline]
    pub fn cost(&self, alpha: f64) -> f64 {
        self.seq_reads as f64 + self.rand_reads as f64 * alpha
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            seq_reads: self.seq_reads - earlier.seq_reads,
            rand_reads: self.rand_reads - earlier.rand_reads,
            writes: self.writes - earlier.writes,
        }
    }

    /// Saturating element-wise accumulation — the aggregation parallel
    /// executors and the sim harness need when summing per-worker or
    /// per-run counters.
    pub fn merge(&mut self, other: &IoStats) {
        self.seq_reads = self.seq_reads.saturating_add(other.seq_reads);
        self.rand_reads = self.rand_reads.saturating_add(other.rand_reads);
        self.writes = self.writes.saturating_add(other.writes);
    }
}

impl std::ops::AddAssign<IoStats> for IoStats {
    fn add_assign(&mut self, other: IoStats) {
        self.merge(&other);
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} seq + {} rand reads ({} total), {} writes",
            self.seq_reads,
            self.rand_reads,
            self.total_reads(),
            self.writes
        )
    }
}

/// The kind of misbehaviour a [`Fault`] injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The read fails `failures` consecutive times, then succeeds — the
    /// classic recoverable device hiccup. Whether it is absorbed depends
    /// on the [`RetryPolicy`].
    TransientRead {
        /// Consecutive failures before the page reads cleanly.
        failures: u32,
    },
    /// The *write* persists only the first half of the payload (the tail
    /// is zeroed) while the header keeps the checksum of the intended
    /// bytes — detected as [`Error::Corrupt`] on the next read.
    TornWrite,
    /// Permanently flips one stored bit of the page (header or payload;
    /// the offset is taken modulo the page's total bit width). Detected
    /// by header verification on every subsequent read.
    BitFlip {
        /// Bit position in `header ‖ payload` space (modulo-reduced).
        bit_offset: u64,
    },
    /// The device serves the whole run at the random rate — a seek-storm
    /// latency spike. The read succeeds; only its price changes.
    LatencySpike,
}

/// One planned fault: `kind` strikes the `nth_access` (0-based) of
/// `(file, page)` on its path — reads for everything except
/// [`FaultKind::TornWrite`], which counts writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Target file.
    pub file: FileId,
    /// Target page within the file.
    pub page: u64,
    /// Which access to that page triggers the fault (0 = first).
    pub nth_access: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults to inject. Each fault fires at most
/// once; install with [`DiskSim::set_fault_plan`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one explicit fault.
    pub fn with_fault(mut self, file: FileId, page: u64, nth_access: u64, kind: FaultKind) -> Self {
        self.faults.push(Fault {
            file,
            page,
            nth_access,
            kind,
        });
        self
    }

    /// Builds a deterministic plan from a seed: one fault per target
    /// `(file, page)`, with the kind and trigger access drawn from a
    /// SplitMix64 stream (≈½ transient, ¼ bit flip, ¼ latency spike —
    /// torn writes are write-path faults and are only planned explicitly).
    /// The same seed and targets always produce the same plan.
    pub fn seeded(seed: u64, targets: &[(FileId, u64)]) -> Self {
        let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
        let mut plan = FaultPlan::new();
        for &(file, page) in targets {
            let r = splitmix64(&mut state);
            let nth_access = (r >> 32) & 1;
            let kind = match r % 4 {
                0 | 1 => FaultKind::TransientRead {
                    failures: 1 + ((r >> 8) & 1) as u32,
                },
                2 => FaultKind::BitFlip {
                    bit_offset: splitmix64(&mut state),
                },
                _ => FaultKind::LatencySpike,
            };
            plan = plan.with_fault(file, page, nth_access, kind);
        }
        plan
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The planned faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

/// How long to wait between retry attempts. The simulator never sleeps;
/// delays are accumulated into [`FaultStats::backoff_us`] so tests can
/// assert the policy was honoured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backoff {
    /// Retry immediately.
    None,
    /// A fixed delay (µs) before every retry.
    Fixed(u64),
    /// `base_us`, doubling on each further retry.
    Exponential {
        /// Delay before the first retry, in µs.
        base_us: u64,
    },
}

impl Backoff {
    /// Delay before attempt number `attempt` (attempt 2 = first retry).
    pub fn delay_us(&self, attempt: u32) -> u64 {
        match *self {
            Backoff::None => 0,
            Backoff::Fixed(us) => us,
            Backoff::Exponential { base_us } => {
                base_us.saturating_mul(1u64 << (attempt.saturating_sub(2)).min(63))
            }
        }
    }
}

/// How the read path responds to transient faults.
///
/// Backoff delays are *jittered* by default: a fleet of workers that all
/// hit the same hiccup at the same time would otherwise retry in lockstep
/// (their fixed/exponential schedules are identical), re-colliding on
/// every attempt. The jitter is deterministic — derived from
/// `(jitter_seed, file, page, attempt)` via SplitMix64 — so two workers
/// retrying *different* pages desynchronize while any single schedule
/// stays exactly reproducible. `max_total_backoff_us` caps the cumulative
/// backoff one read operation may accrue, bounding worst-case retry wall
/// time no matter how many pages of the run fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per page (1 = no retries). Must be ≥ 1.
    pub max_attempts: u32,
    /// Wait discipline between attempts.
    pub backoff: Backoff,
    /// Seed for deterministic per-`(file, page, attempt)` jitter. `None`
    /// disables jitter (the pre-jitter synchronized schedule, kept for
    /// tests that assert exact delays).
    pub jitter_seed: Option<u64>,
    /// Upper bound on the backoff one read operation may accumulate, in
    /// µs. Retries past the cap still happen — they just stop waiting.
    pub max_total_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Backoff::Exponential { base_us: 100 },
            jitter_seed: Some(0x7465_786A_6F69_6E21),
            max_total_backoff_us: 5_000,
        }
    }
}

impl RetryPolicy {
    /// The (possibly jittered) delay before `attempt` on `(file, page)`.
    /// With jitter enabled the delay is drawn uniformly from
    /// `[base/2, base]` ("equal jitter"), deterministically per target —
    /// the same page always backs off identically, different pages
    /// desynchronize.
    pub fn delay_us(&self, file: FileId, page: u64, attempt: u32) -> u64 {
        let base = self.backoff.delay_us(attempt);
        let Some(seed) = self.jitter_seed else {
            return base;
        };
        if base == 0 {
            return 0;
        }
        let mut state = seed
            ^ ((file.raw() as u64) << 40)
            ^ page.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ ((attempt as u64) << 24);
        let r = splitmix64(&mut state);
        let half = base / 2;
        half + r % (base - half + 1)
    }
}

/// Cumulative fault-injection and recovery counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient read faults injected.
    pub injected_transient: u64,
    /// Torn writes injected.
    pub injected_torn: u64,
    /// Bit flips injected.
    pub injected_bit_flips: u64,
    /// Latency spikes injected.
    pub injected_latency: u64,
    /// Read attempts beyond the first (whether or not the page was
    /// eventually read).
    pub retries: u64,
    /// Pages abandoned after `max_attempts` failures.
    pub gave_up: u64,
    /// Simulated backoff accumulated across all retries, in µs.
    pub backoff_us: u64,
}

impl FaultStats {
    /// Total faults injected, of any kind.
    pub fn total_injected(&self) -> u64 {
        self.injected_transient
            + self.injected_torn
            + self.injected_bit_flips
            + self.injected_latency
    }

    fn accumulate(&mut self, d: &FaultStats) {
        self.injected_transient += d.injected_transient;
        self.injected_torn += d.injected_torn;
        self.injected_bit_flips += d.injected_bit_flips;
        self.injected_latency += d.injected_latency;
        self.retries += d.retries;
        self.gave_up += d.gave_up;
        self.backoff_us += d.backoff_us;
    }
}

/// Counter handles a [`DiskSim`] emits read/write and fault events into
/// when attached via [`DiskSim::set_metrics`].
#[derive(Clone)]
pub struct DiskMetrics {
    seq_reads: Counter,
    rand_reads: Counter,
    writes: Counter,
    retries: Counter,
    gave_up: Counter,
    faults_transient: Counter,
    faults_torn: Counter,
    faults_bit_flip: Counter,
    faults_latency: Counter,
    read_wall_ns: Histogram,
    write_wall_ns: Histogram,
}

impl DiskMetrics {
    /// Registers the disk and fault counters under `label` (typically the
    /// experiment or catalog name).
    pub fn register(registry: &Registry, label: &str) -> Self {
        Self {
            seq_reads: registry.counter("disk.seq_reads", label),
            rand_reads: registry.counter("disk.rand_reads", label),
            writes: registry.counter("disk.writes", label),
            retries: registry.counter("disk.retries", label),
            gave_up: registry.counter("disk.gave_up", label),
            faults_transient: registry.counter("faults.transient", label),
            faults_torn: registry.counter("faults.torn_write", label),
            faults_bit_flip: registry.counter("faults.bit_flip", label),
            faults_latency: registry.counter("faults.latency", label),
            read_wall_ns: registry.histogram("disk.read_wall_ns", label, &LATENCY_BOUNDS_NS),
            write_wall_ns: registry.histogram("disk.write_wall_ns", label, &LATENCY_BOUNDS_NS),
        }
    }

    /// Wall-clock latency distribution of read operations.
    pub fn read_wall_ns(&self) -> &Histogram {
        &self.read_wall_ns
    }

    /// Wall-clock latency distribution of write operations.
    pub fn write_wall_ns(&self) -> &Histogram {
        &self.write_wall_ns
    }

    fn mirror_faults(&self, d: &FaultStats) {
        self.retries.inc_by(d.retries);
        self.gave_up.inc_by(d.gave_up);
        self.faults_transient.inc_by(d.injected_transient);
        self.faults_torn.inc_by(d.injected_torn);
        self.faults_bit_flip.inc_by(d.injected_bit_flips);
        self.faults_latency.inc_by(d.injected_latency);
    }
}

#[derive(Default)]
struct FileData {
    name: String,
    kind: PageKind,
    pages: Vec<Arc<[u8]>>,
    headers: Vec<[u8; PAGE_HEADER_BYTES]>,
}

fn flip_stored_bit(f: &mut FileData, page: u64, bit_offset: u64, page_size: usize) {
    let total_bits = ((PAGE_HEADER_BYTES + page_size) * 8) as u64;
    let bit = bit_offset % total_bits;
    let (byte, mask) = ((bit / 8) as usize, 1u8 << (bit % 8));
    if byte < PAGE_HEADER_BYTES {
        f.headers[page as usize][byte] ^= mask;
    } else {
        let mut v = f.pages[page as usize].to_vec();
        v[byte - PAGE_HEADER_BYTES] ^= mask;
        f.pages[page as usize] = v.into();
    }
}

fn verify_page(f: &FileData, page: u64) -> Result<()> {
    let h = &f.headers[page as usize];
    let fail =
        |reason: String| Error::Corrupt(format!("file '{}' page {}: {}", f.name, page, reason));
    if h[0..2] != PAGE_MAGIC {
        return Err(fail("bad page magic".into()));
    }
    if h[2] != PAGE_FORMAT_VERSION {
        return Err(fail(format!(
            "page format version {} (expected {PAGE_FORMAT_VERSION})",
            h[2]
        )));
    }
    match PageKind::from_u8(h[3]) {
        Some(k) if k == f.kind => {}
        Some(k) => return Err(fail(format!("page kind {k:?} in a {:?} file", f.kind))),
        None => return Err(fail(format!("unknown page kind {}", h[3]))),
    }
    let stored = u32::from_le_bytes([h[4], h[5], h[6], h[7]]);
    let computed = crc32(&f.pages[page as usize]);
    if stored != computed {
        return Err(fail(format!(
            "checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
        )));
    }
    Ok(())
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum FaultPath {
    Read,
    Write,
}

struct PlannedFault {
    fault: Fault,
    fired: bool,
}

struct FaultMachinery {
    plan: Vec<PlannedFault>,
    read_counts: HashMap<(FileId, u64), u64>,
    write_counts: HashMap<(FileId, u64), u64>,
    policy: RetryPolicy,
    stats: FaultStats,
    /// Simulated power-cut: `Some(n)` lets `n` more page writes succeed,
    /// then every write fails until cleared (a "restart").
    write_crash: Option<u64>,
}

impl FaultMachinery {
    fn take_fault(
        &mut self,
        file: FileId,
        page: u64,
        nth: u64,
        path: FaultPath,
    ) -> Option<FaultKind> {
        let pf = self.plan.iter_mut().find(|pf| {
            !pf.fired
                && pf.fault.file == file
                && pf.fault.page == page
                && pf.fault.nth_access == nth
                && (matches!(pf.fault.kind, FaultKind::TornWrite) == (path == FaultPath::Write))
        })?;
        pf.fired = true;
        Some(pf.fault.kind)
    }
}

/// Simulated per-page service time, charged alongside the page counters.
/// Zero (the default) keeps the disk a pure accountant; non-zero values
/// make each read sleep `seq_ns`/`rand_ns` per page at its charged rate,
/// so concurrent readers overlap their waits like parallel drives.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageLatency {
    /// Simulated nanoseconds per sequentially-charged page.
    pub seq_ns: u64,
    /// Simulated nanoseconds per randomly-charged page.
    pub rand_ns: u64,
}

impl PageLatency {
    #[inline]
    fn is_zero(&self) -> bool {
        self.seq_ns == 0 && self.rand_ns == 0
    }
}

struct HeadState {
    /// Per-(thread, file) head positions — a dedicated drive per scanning
    /// thread per file: the next page a sequential continuation would
    /// start at.
    heads: HashMap<(std::thread::ThreadId, FileId), u64>,
    stats: IoStats,
    interference: bool,
    latency: PageLatency,
    /// Optional observability sink; updated under the same lock that
    /// already guards `stats`, so attaching metrics adds no extra
    /// synchronisation to the read path.
    metrics: Option<DiskMetrics>,
}

thread_local! {
    /// Per-thread mirror of the global counters. Every charge bumps both
    /// under the same lock acquisition, so for any set of threads the sum
    /// of their thread-local deltas equals the global delta exactly —
    /// including the sequential/random split. Parallel executors use this
    /// to attribute shared-disk traffic to individual workers.
    static THREAD_IO: std::cell::Cell<IoStats> = const {
        std::cell::Cell::new(IoStats {
            seq_reads: 0,
            rand_reads: 0,
            writes: 0,
        })
    };
}

thread_local! {
    /// Simulated latency owed by this thread but not yet slept off. Debts
    /// are paid in chunks of at least [`LATENCY_CHUNK_NS`], so µs-scale
    /// per-page latencies are not drowned out by OS timer slack.
    static LATENCY_DEBT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Sleep granularity for simulated page latency.
const LATENCY_CHUNK_NS: u64 = 100_000;

/// Accrues `ns` of simulated service time on the calling thread, sleeping
/// once the accumulated debt is worth a timer round-trip. Called outside
/// every lock, so concurrent readers overlap their waits.
fn pay_latency(ns: u64) {
    LATENCY_DEBT.with(|d| {
        let debt = d.get() + ns;
        if debt >= LATENCY_CHUNK_NS {
            d.set(0);
            std::thread::sleep(std::time::Duration::from_nanos(debt));
        } else {
            d.set(debt);
        }
    });
}

impl HeadState {
    #[inline]
    fn charge_seq(&mut self, pages: u64) {
        self.stats.seq_reads += pages;
        THREAD_IO.with(|t| {
            let mut s = t.get();
            s.seq_reads += pages;
            t.set(s);
        });
        if let Some(m) = &self.metrics {
            m.seq_reads.inc_by(pages);
        }
    }

    #[inline]
    fn charge_rand(&mut self, pages: u64) {
        self.stats.rand_reads += pages;
        THREAD_IO.with(|t| {
            let mut s = t.get();
            s.rand_reads += pages;
            t.set(s);
        });
        if let Some(m) = &self.metrics {
            m.rand_reads.inc_by(pages);
        }
    }

    #[inline]
    fn charge_write(&mut self) {
        self.stats.writes += 1;
        THREAD_IO.with(|t| {
            let mut s = t.get();
            s.writes += 1;
            t.set(s);
        });
        if let Some(m) = &self.metrics {
            m.writes.inc();
        }
    }
}

#[derive(Clone, Copy)]
enum RunPricing {
    /// Whole run sequential-or-random ([`DiskSim::read_run`]).
    Run,
    /// One seek then streaming ([`DiskSim::read_scan`]).
    Scan,
}

/// An in-memory disk simulator with sequential/random accounting,
/// checksummed pages, fault injection and retrying reads.
///
/// All methods take `&self`; internal state is protected by mutexes so a
/// `DiskSim` can be shared (e.g. between a document store and its inverted
/// file) without threading `&mut` through every layer.
pub struct DiskSim {
    page_size: usize,
    files: Mutex<Vec<FileData>>,
    names: Mutex<HashMap<String, FileId>>,
    state: Mutex<HeadState>,
    faults: Mutex<FaultMachinery>,
}

impl DiskSim {
    /// Creates an empty disk with the given page size.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            files: Mutex::new(Vec::new()),
            names: Mutex::new(HashMap::new()),
            state: Mutex::new(HeadState {
                heads: HashMap::new(),
                stats: IoStats::default(),
                interference: false,
                latency: PageLatency::default(),
                metrics: None,
            }),
            faults: Mutex::new(FaultMachinery {
                plan: Vec::new(),
                read_counts: HashMap::new(),
                write_counts: HashMap::new(),
                policy: RetryPolicy::default(),
                stats: FaultStats::default(),
                write_crash: None,
            }),
        }
    }

    /// The page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Creates a new empty file of [`PageKind::Raw`] pages. Names are
    /// informational but must be unique.
    pub fn create_file(&self, name: &str) -> Result<FileId> {
        self.create_file_with_kind(name, PageKind::Raw)
    }

    /// Creates a new empty file whose pages will be stamped (and checked)
    /// as `kind`.
    pub fn create_file_with_kind(&self, name: &str, kind: PageKind) -> Result<FileId> {
        let mut names = self.names.lock();
        if names.contains_key(name) {
            return Err(Error::InvalidArgument(format!(
                "file '{name}' already exists"
            )));
        }
        let mut files = self.files.lock();
        let id = FileId(files.len() as u32);
        files.push(FileData {
            name: name.to_string(),
            kind,
            pages: Vec::new(),
            headers: Vec::new(),
        });
        names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a file by name.
    pub fn file_by_name(&self, name: &str) -> Option<FileId> {
        self.names.lock().get(name).copied()
    }

    /// The names of all files currently on the disk, sorted. Recovery uses
    /// this to find (and clean up) orphaned files left by an interrupted
    /// merge.
    pub fn file_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.names.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Atomically renames a file, *replacing* any existing file called
    /// `to` — POSIX `rename(2)` semantics, the primitive behind
    /// compact-by-rename: a merge builds a complete new structure under a
    /// temporary name and publishes it with one rename, so readers only
    /// ever see the old complete file or the new complete file.
    pub fn rename_file(&self, from: &str, to: &str) -> Result<()> {
        let mut names = self.names.lock();
        let id = names
            .get(from)
            .copied()
            .ok_or_else(|| Error::NotFound(format!("file '{from}'")))?;
        if from == to {
            return Ok(());
        }
        let mut files = self.files.lock();
        if let Some(old) = names.remove(to) {
            // The replaced file's pages are gone; stale handles to it read
            // out of bounds, exactly like a unix fd would after truncate.
            let f = &mut files[old.0 as usize];
            f.name.clear();
            f.pages.clear();
            f.headers.clear();
        }
        names.remove(from);
        names.insert(to.to_string(), id);
        files[id.0 as usize].name = to.to_string();
        Ok(())
    }

    /// Deletes a file. Stale [`FileId`] handles to it read out of bounds.
    pub fn remove_file(&self, name: &str) -> Result<()> {
        let mut names = self.names.lock();
        let id = names
            .remove(name)
            .ok_or_else(|| Error::NotFound(format!("file '{name}'")))?;
        let mut files = self.files.lock();
        let f = &mut files[id.0 as usize];
        f.name.clear();
        f.pages.clear();
        f.headers.clear();
        Ok(())
    }

    /// The name a file was created with.
    pub fn file_name(&self, file: FileId) -> String {
        self.files.lock()[file.0 as usize].name.clone()
    }

    /// The page kind a file was created with.
    pub fn file_kind(&self, file: FileId) -> PageKind {
        self.files.lock()[file.0 as usize].kind
    }

    /// Number of pages currently in the file.
    pub fn num_pages(&self, file: FileId) -> u64 {
        self.files.lock()[file.0 as usize].pages.len() as u64
    }

    fn validate_payload(&self, data: &[u8]) -> Result<()> {
        if data.len() != self.page_size {
            return Err(Error::InvalidArgument(format!(
                "payload of {} bytes does not match page size {} \
                 (pad partial pages explicitly — short writes are torn writes)",
                data.len(),
                self.page_size
            )));
        }
        Ok(())
    }

    /// Arms a simulated power-cut: the next `after` page writes succeed,
    /// then every subsequent write (append or overwrite) fails with
    /// [`Error::Io`] until [`clear_write_crash`](Self::clear_write_crash)
    /// — the "restart". Reads are unaffected, so recovery code can run
    /// against exactly the pages that made it to disk before the cut.
    pub fn set_write_crash_after(&self, after: u64) {
        self.faults.lock().write_crash = Some(after);
    }

    /// Disarms a simulated power-cut (the machine came back up).
    pub fn clear_write_crash(&self) {
        self.faults.lock().write_crash = None;
    }

    /// Decrements the armed write-crash budget, failing the write that
    /// exhausts it. Caller holds the `files` lock (files → faults is the
    /// established lock order).
    fn check_write_crash(&self, file_name: &str, page: u64) -> Result<()> {
        let mut fm = self.faults.lock();
        let Some(remaining) = &mut fm.write_crash else {
            return Ok(());
        };
        if *remaining == 0 {
            return Err(Error::Io {
                file: file_name.to_string(),
                page,
                attempts: 0,
            });
        }
        *remaining -= 1;
        Ok(())
    }

    /// Injects any planned torn write for `(file, page)`, returning the
    /// fault delta to mirror into metrics. Caller holds the `files` lock.
    fn apply_write_faults(&self, file: FileId, page: u64, payload: &mut [u8]) -> FaultStats {
        let mut delta = FaultStats::default();
        let mut fm = self.faults.lock();
        let count = fm.write_counts.entry((file, page)).or_insert(0);
        let nth = *count;
        *count += 1;
        if fm.take_fault(file, page, nth, FaultPath::Write).is_some() {
            delta.injected_torn += 1;
            let keep = payload.len() / 2;
            for b in &mut payload[keep..] {
                *b = 0;
            }
        }
        fm.stats.accumulate(&delta);
        delta
    }

    /// Appends a page to the file, returning its page number. The payload
    /// must be exactly one page; partial pages must be padded by the
    /// caller (logical byte counts live in the callers' directories, not
    /// here). The header (magic, version, kind, CRC32) is stored out of
    /// band. Writes are not charged to the read-cost model — the paper's
    /// analysis covers query processing, not index construction — but are
    /// counted in [`IoStats::writes`].
    pub fn append_page(&self, file: FileId, data: &[u8]) -> Result<u64> {
        let started = Instant::now();
        self.validate_payload(data)?;
        let mut files = self.files.lock();
        let f = &mut files[file.0 as usize];
        let page_no = f.pages.len() as u64;
        self.check_write_crash(&f.name, page_no)?;
        let header = make_header(f.kind, data);
        let mut payload = data.to_vec();
        let delta = self.apply_write_faults(file, page_no, &mut payload);
        f.headers.push(header);
        f.pages.push(payload.into());
        drop(files);
        let mut st = self.state.lock();
        st.charge_write();
        if let Some(m) = &st.metrics {
            m.mirror_faults(&delta);
            m.write_wall_ns.observe(started.elapsed().as_nanos() as u64);
        }
        Ok(page_no)
    }

    /// Overwrites an existing page in place (used by mutable structures
    /// such as the B+tree during inserts). Same exact-length contract as
    /// [`Self::append_page`]; counted in [`IoStats::writes`].
    pub fn write_page(&self, file: FileId, page: u64, data: &[u8]) -> Result<()> {
        let started = Instant::now();
        self.validate_payload(data)?;
        let mut files = self.files.lock();
        let f = &mut files[file.0 as usize];
        let n = f.pages.len() as u64;
        if page >= n {
            return Err(Error::PageOutOfBounds {
                file: f.name.clone(),
                page,
                len: n,
            });
        }
        self.check_write_crash(&f.name, page)?;
        let header = make_header(f.kind, data);
        let mut payload = data.to_vec();
        let delta = self.apply_write_faults(file, page, &mut payload);
        f.headers[page as usize] = header;
        f.pages[page as usize] = payload.into();
        drop(files);
        let mut st = self.state.lock();
        st.charge_write();
        if let Some(m) = &st.metrics {
            m.mirror_faults(&delta);
            m.write_wall_ns.observe(started.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Sets the simulated per-page service time. Zero (the default) keeps
    /// reads instantaneous; non-zero values make every charged page cost
    /// real wall time on the reading thread, which is what lets parallel
    /// workers show wall-clock I/O overlap in benchmarks.
    pub fn set_page_latency(&self, latency: PageLatency) {
        self.state.lock().latency = latency;
    }

    /// The current simulated per-page service time.
    pub fn page_latency(&self) -> PageLatency {
        self.state.lock().latency
    }

    /// Enables or disables interference mode (every run random).
    pub fn set_interference(&self, on: bool) {
        self.state.lock().interference = on;
    }

    /// Whether interference mode is on.
    pub fn interference(&self) -> bool {
        self.state.lock().interference
    }

    /// Snapshot of the cumulative I/O counters.
    pub fn stats(&self) -> IoStats {
        self.state.lock().stats
    }

    /// Cumulative I/O charged *by the calling thread*, across every
    /// `DiskSim` it has touched. Monotonically increasing, so a worker can
    /// snapshot it before and after a unit of work and take
    /// [`IoStats::since`] to attribute shared-disk traffic to itself; the
    /// per-worker deltas of a parallel scope sum exactly to the global
    /// delta of [`Self::stats`] when the workers are the only readers.
    pub fn thread_io_stats() -> IoStats {
        THREAD_IO.with(|t| t.get())
    }

    /// Resets the I/O counters (head position and interference mode are
    /// kept).
    pub fn reset_stats(&self) {
        self.state.lock().stats = IoStats::default();
    }

    /// Forgets all head positions, so the next read of any file is random.
    /// Used between experiment phases.
    pub fn reset_head(&self) {
        self.state.lock().heads.clear();
    }

    /// Installs a fault schedule (replacing any previous one) and resets
    /// the per-page access counters it is keyed on. [`FaultStats`] are
    /// *not* reset — use [`Self::reset_fault_stats`].
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let mut fm = self.faults.lock();
        fm.plan = plan
            .faults
            .into_iter()
            .map(|fault| PlannedFault {
                fault,
                fired: false,
            })
            .collect();
        fm.read_counts.clear();
        fm.write_counts.clear();
    }

    /// Removes any installed fault schedule.
    pub fn clear_fault_plan(&self) {
        self.set_fault_plan(FaultPlan::new());
    }

    /// Number of planned faults that have not fired yet.
    pub fn pending_faults(&self) -> usize {
        self.faults
            .lock()
            .plan
            .iter()
            .filter(|pf| !pf.fired)
            .count()
    }

    /// Sets the read retry policy.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        assert!(policy.max_attempts >= 1, "at least one attempt required");
        self.faults.lock().policy = policy;
    }

    /// The current read retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.faults.lock().policy
    }

    /// Snapshot of the cumulative fault-injection counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.lock().stats
    }

    /// Resets the fault counters (the installed plan is kept).
    pub fn reset_fault_stats(&self) {
        self.faults.lock().stats = FaultStats::default();
    }

    /// Permanently flips one stored bit of a page — the corruption hook
    /// behind [`FaultKind::BitFlip`], also usable directly by tests. The
    /// offset addresses `header ‖ payload` bit space (modulo-reduced), so
    /// any flip lands somewhere header verification can see.
    pub fn flip_bit(&self, file: FileId, page: u64, bit_offset: u64) -> Result<()> {
        let mut files = self.files.lock();
        let f = &mut files[file.0 as usize];
        let n = f.pages.len() as u64;
        if page >= n {
            return Err(Error::PageOutOfBounds {
                file: f.name.clone(),
                page,
                len: n,
            });
        }
        flip_stored_bit(f, page, bit_offset, self.page_size);
        Ok(())
    }

    /// Reads a single page. Equivalent to `read_run(file, page, 1)`.
    pub fn read_page(&self, file: FileId, page: u64) -> Result<Arc<[u8]>> {
        let mut run = self.read_run(file, page, 1)?;
        run.pop()
            .ok_or_else(|| Error::Corrupt(format!("empty run reading page {page} of {file}")))
    }

    /// Reads `len` consecutive pages starting at `start`, classifying the
    /// whole run as sequential (it continues the head position) or random
    /// (all pages charged at the `α` rate), per the paper's model.
    pub fn read_run(&self, file: FileId, start: u64, len: u64) -> Result<Vec<Arc<[u8]>>> {
        self.read_pages(file, start, len, RunPricing::Run)
    }

    /// Reads `len` consecutive pages as a *streamed scan*: only the first
    /// page pays the seek (random) when the run does not continue the head
    /// position; the rest stream sequentially. This is the pricing of the
    /// paper's full-structure scans (`D` for a collection, `I` for an
    /// inverted file, `Bt` for the B+tree), in contrast to [`read_run`]
    /// which prices short random fetches (`⌈S⌉·α`, `⌈J⌉·α`) entirely at the
    /// random rate. In interference mode every page is random, matching the
    /// worst-case variants.
    ///
    /// [`read_run`]: Self::read_run
    pub fn read_scan(&self, file: FileId, start: u64, len: u64) -> Result<Vec<Arc<[u8]>>> {
        self.read_pages(file, start, len, RunPricing::Scan)
    }

    /// Shared read path: bounds check, fault injection, retry accounting,
    /// header verification, then I/O pricing. Transient faults are
    /// retried per the [`RetryPolicy`] (each retry re-charged at the
    /// random rate); verification failures are *not* retried — corruption
    /// is permanent, so a re-read cannot help.
    fn read_pages(
        &self,
        file: FileId,
        start: u64,
        len: u64,
        pricing: RunPricing,
    ) -> Result<Vec<Arc<[u8]>>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let started = Instant::now();
        let mut files = self.files.lock();
        let page_size = self.page_size;
        let f = &mut files[file.0 as usize];
        let n = f.pages.len() as u64;
        if start + len > n {
            return Err(Error::PageOutOfBounds {
                file: f.name.clone(),
                page: start + len - 1,
                len: n,
            });
        }

        let mut delta = FaultStats::default();
        let mut extra_rand = 0u64;
        let mut force_random = false;
        let mut failure: Option<Error> = None;
        {
            let mut fm = self.faults.lock();
            let policy = fm.policy;
            // Cumulative backoff of *this* read operation, bounded by the
            // policy's cap however many pages of the run fault.
            let mut op_backoff_us = 0u64;
            for p in start..start + len {
                let count = fm.read_counts.entry((file, p)).or_insert(0);
                let nth = *count;
                *count += 1;
                let Some(kind) = fm.take_fault(file, p, nth, FaultPath::Read) else {
                    continue;
                };
                match kind {
                    FaultKind::TransientRead { failures } => {
                        delta.injected_transient += 1;
                        let attempts = (failures + 1).min(policy.max_attempts);
                        let retries = u64::from(attempts.saturating_sub(1));
                        delta.retries += retries;
                        extra_rand += retries;
                        for a in 2..=attempts {
                            let room = policy.max_total_backoff_us.saturating_sub(op_backoff_us);
                            let wait = policy.delay_us(file, p, a).min(room);
                            op_backoff_us += wait;
                            delta.backoff_us += wait;
                        }
                        if failures >= policy.max_attempts {
                            delta.gave_up += 1;
                            if failure.is_none() {
                                failure = Some(Error::Io {
                                    file: f.name.clone(),
                                    page: p,
                                    attempts: policy.max_attempts,
                                });
                            }
                        }
                    }
                    FaultKind::BitFlip { bit_offset } => {
                        delta.injected_bit_flips += 1;
                        flip_stored_bit(f, p, bit_offset, page_size);
                    }
                    FaultKind::LatencySpike => {
                        delta.injected_latency += 1;
                        force_random = true;
                    }
                    // Write-path kind; the path filter keeps it out of
                    // read lookups, but the match must be exhaustive.
                    FaultKind::TornWrite => {}
                }
            }
            fm.stats.accumulate(&delta);
        }

        if failure.is_none() {
            for p in start..start + len {
                if let Err(e) = verify_page(f, p) {
                    failure = Some(e);
                    break;
                }
            }
        }
        let out: Vec<Arc<[u8]>> = if failure.is_none() {
            f.pages[start as usize..(start + len) as usize]
                .iter()
                .map(Arc::clone)
                .collect()
        } else {
            Vec::new()
        };
        drop(files);

        let head_key = (std::thread::current().id(), file);
        let mut st = self.state.lock();
        let (mut seq_pages, mut rand_pages) = (0u64, 0u64);
        match pricing {
            RunPricing::Run => {
                let sequential =
                    !force_random && !st.interference && st.heads.get(&head_key) == Some(&start);
                if sequential {
                    seq_pages = len;
                } else {
                    rand_pages = len;
                }
            }
            RunPricing::Scan => {
                if st.interference || force_random {
                    rand_pages = len;
                } else {
                    let continues = st.heads.get(&head_key) == Some(&start);
                    if continues {
                        seq_pages = len;
                    } else {
                        rand_pages = 1;
                        seq_pages = len - 1;
                    }
                }
            }
        }
        rand_pages += extra_rand;
        if seq_pages > 0 {
            st.charge_seq(seq_pages);
        }
        if rand_pages > 0 {
            st.charge_rand(rand_pages);
        }
        if let Some(m) = &st.metrics {
            m.mirror_faults(&delta);
            // Failed reads are timed too: a retried-then-abandoned page
            // costs real latency that should show in the distribution.
            m.read_wall_ns.observe(started.elapsed().as_nanos() as u64);
        }
        let latency = st.latency;
        let result = match failure {
            None => {
                st.heads.insert(head_key, start + len);
                Ok(out)
            }
            Some(e) => {
                // A failed read leaves the head position undefined: the
                // next access pays a seek.
                st.heads.remove(&head_key);
                Err(e)
            }
        };
        drop(st);
        if !latency.is_zero() {
            pay_latency(seq_pages * latency.seq_ns + rand_pages * latency.rand_ns);
        }
        result
    }

    /// Charges a synthetic run without materialising data — used by the
    /// simulation harness when running the cost accounting at paper scale
    /// where the files are never populated. Bypasses fault injection and
    /// verification (there are no bytes to fault or verify).
    pub fn charge_run(&self, file: FileId, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let head_key = (std::thread::current().id(), file);
        let mut st = self.state.lock();
        let sequential = !st.interference && st.heads.get(&head_key) == Some(&start);
        if sequential {
            st.charge_seq(len);
        } else {
            st.charge_rand(len);
        }
        st.heads.insert(head_key, start + len);
    }

    /// Attaches (or with `None`, detaches) an observability sink: every
    /// page read/write and every injected fault is mirrored into the
    /// registered counters. Updates happen under the existing accounting
    /// lock, so the read path gains no extra synchronisation.
    pub fn set_metrics(&self, metrics: Option<DiskMetrics>) {
        self.state.lock().metrics = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_page(size: usize, tag: u8) -> Vec<u8> {
        let mut p = vec![tag; size];
        p[0] = tag;
        p
    }

    fn disk_with_file(pages: u64) -> (DiskSim, FileId) {
        let disk = DiskSim::new(64);
        let f = disk.create_file("test").unwrap();
        for i in 0..pages {
            disk.append_page(f, &full_page(64, i as u8)).unwrap();
        }
        disk.reset_stats();
        disk.reset_head();
        (disk, f)
    }

    #[test]
    fn sequential_scan_costs_one_random_then_sequential() {
        let (disk, f) = disk_with_file(10);
        // First run: head unknown → random. Continuation runs: sequential.
        disk.read_run(f, 0, 4).unwrap();
        disk.read_run(f, 4, 6).unwrap();
        let s = disk.stats();
        assert_eq!(s.rand_reads, 4);
        assert_eq!(s.seq_reads, 6);
    }

    #[test]
    fn non_contiguous_run_is_fully_random() {
        let (disk, f) = disk_with_file(10);
        disk.read_run(f, 0, 2).unwrap();
        disk.read_run(f, 5, 3).unwrap(); // skips pages 2-4
        let s = disk.stats();
        assert_eq!(s.rand_reads, 5); // 2 (cold head) + 3 (jump)
        assert_eq!(s.seq_reads, 0);
    }

    #[test]
    fn re_reading_same_page_is_random() {
        let (disk, f) = disk_with_file(3);
        disk.read_page(f, 1).unwrap();
        disk.read_page(f, 1).unwrap(); // head is now at page 2; going back seeks
        assert_eq!(disk.stats().rand_reads, 2);
    }

    #[test]
    fn thread_local_deltas_sum_to_the_global_delta() {
        let (disk, f) = disk_with_file(12);
        let global_start = disk.stats();
        let deltas: Vec<IoStats> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3u64)
                .map(|w| {
                    let disk = &disk;
                    s.spawn(move || {
                        let before = DiskSim::thread_io_stats();
                        disk.read_run(f, w * 4, 4).unwrap();
                        DiskSim::thread_io_stats().since(&before)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut sum = IoStats::default();
        for d in &deltas {
            sum.merge(d);
            assert_eq!(d.total_reads(), 4, "each worker read its 4 pages");
        }
        let global = disk.stats().since(&global_start);
        assert_eq!(sum, global, "worker deltas account for all traffic");
    }

    #[test]
    fn per_thread_heads_make_concurrent_scans_deterministic() {
        // Two threads stream the same file concurrently. Each is a
        // dedicated drive: whatever the interleaving, each thread's scan
        // is one cold seek plus sequential pages — never perturbed by the
        // other thread's head movement.
        let (disk, f) = disk_with_file(8);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let disk = &disk;
                s.spawn(move || disk.read_scan(f, 0, 8).unwrap());
            }
        });
        let st = disk.stats();
        assert_eq!(st.rand_reads, 2);
        assert_eq!(st.seq_reads, 14);
    }

    #[test]
    fn page_latency_costs_wall_time_per_charged_page() {
        let (disk, f) = disk_with_file(10);
        assert_eq!(disk.page_latency(), PageLatency::default());
        disk.set_page_latency(PageLatency {
            seq_ns: 200_000,
            rand_ns: 200_000,
        });
        let started = Instant::now();
        disk.read_scan(f, 0, 10).unwrap();
        // 10 pages × 200µs = 2ms of simulated service time; the debt
        // chunking may defer the tail below one chunk, never more.
        let floor = std::time::Duration::from_nanos(10 * 200_000 - LATENCY_CHUNK_NS);
        assert!(
            started.elapsed() >= floor,
            "elapsed {:?} < {floor:?}",
            started.elapsed()
        );
    }

    #[test]
    fn per_file_heads_keep_interleaved_scans_sequential() {
        // The dedicated-drive assumption of section 5.1: a merge that
        // alternates between two files keeps each file's scan sequential.
        let disk = DiskSim::new(64);
        let a = disk.create_file("a").unwrap();
        let b = disk.create_file("b").unwrap();
        for _ in 0..4 {
            disk.append_page(a, &[0; 64]).unwrap();
            disk.append_page(b, &[0; 64]).unwrap();
        }
        disk.reset_stats();
        disk.read_run(a, 0, 2).unwrap();
        disk.read_run(b, 0, 2).unwrap(); // cold head on b: random
        disk.read_run(a, 2, 2).unwrap(); // continues a: sequential
        disk.read_run(b, 2, 2).unwrap(); // continues b: sequential
        let s = disk.stats();
        assert_eq!(s.rand_reads, 4);
        assert_eq!(s.seq_reads, 4);
    }

    #[test]
    fn interference_makes_everything_random() {
        let (disk, f) = disk_with_file(8);
        disk.set_interference(true);
        disk.read_run(f, 0, 4).unwrap();
        disk.read_run(f, 4, 4).unwrap(); // would be sequential otherwise
        let s = disk.stats();
        assert_eq!(s.rand_reads, 8);
        assert_eq!(s.seq_reads, 0);
    }

    #[test]
    fn read_scan_pays_one_seek_then_streams() {
        let (disk, f) = disk_with_file(10);
        disk.read_scan(f, 0, 10).unwrap();
        let s = disk.stats();
        assert_eq!(s.rand_reads, 1);
        assert_eq!(s.seq_reads, 9);
    }

    #[test]
    fn read_scan_continuation_is_fully_sequential() {
        let (disk, f) = disk_with_file(10);
        disk.read_scan(f, 0, 4).unwrap();
        disk.read_scan(f, 4, 6).unwrap();
        let s = disk.stats();
        assert_eq!(s.rand_reads, 1);
        assert_eq!(s.seq_reads, 9);
    }

    #[test]
    fn read_scan_under_interference_is_all_random() {
        let (disk, f) = disk_with_file(10);
        disk.set_interference(true);
        disk.read_scan(f, 0, 10).unwrap();
        assert_eq!(disk.stats().rand_reads, 10);
    }

    #[test]
    fn write_page_overwrites_in_place() {
        let (disk, f) = disk_with_file(3);
        disk.write_page(f, 1, &full_page(64, 42)).unwrap();
        assert_eq!(disk.read_page(f, 1).unwrap()[0], 42);
        assert!(disk.write_page(f, 3, &full_page(64, 1)).is_err());
        assert_eq!(disk.num_pages(f), 3);
    }

    #[test]
    fn cost_weights_random_by_alpha() {
        let s = IoStats {
            seq_reads: 10,
            rand_reads: 4,
            writes: 0,
        };
        assert_eq!(s.cost(5.0), 10.0 + 20.0);
        assert_eq!(s.total_reads(), 14);
    }

    #[test]
    fn stats_since_subtracts() {
        let (disk, f) = disk_with_file(6);
        disk.read_run(f, 0, 2).unwrap();
        let snap = disk.stats();
        disk.read_run(f, 2, 4).unwrap();
        let delta = disk.stats().since(&snap);
        assert_eq!(delta.seq_reads, 4);
        assert_eq!(delta.rand_reads, 0);
    }

    #[test]
    fn out_of_bounds_read_is_reported() {
        let (disk, f) = disk_with_file(2);
        let err = disk.read_run(f, 1, 5).unwrap_err();
        assert!(matches!(err, Error::PageOutOfBounds { .. }));
    }

    #[test]
    fn duplicate_file_names_rejected() {
        let disk = DiskSim::new(64);
        disk.create_file("x").unwrap();
        assert!(disk.create_file("x").is_err());
        assert!(disk.file_by_name("x").is_some());
        assert!(disk.file_by_name("y").is_none());
    }

    #[test]
    fn append_and_write_validate_payload_length() {
        let disk = DiskSim::new(8);
        let f = disk.create_file("f").unwrap();
        assert_eq!(disk.append_page(f, &[7; 8]).unwrap(), 0);
        for bad in [&[1u8, 2, 3] as &[u8], &[0; 9], &[]] {
            let err = disk.append_page(f, bad).unwrap_err();
            match err {
                Error::InvalidArgument(msg) => {
                    assert!(msg.contains(&bad.len().to_string()), "{msg}");
                    assert!(msg.contains('8'), "{msg}");
                }
                other => panic!("expected InvalidArgument, got {other:?}"),
            }
            assert!(disk.write_page(f, 0, bad).is_err());
        }
        assert_eq!(disk.num_pages(f), 1);
        assert_eq!(disk.stats().writes, 1);
    }

    #[test]
    fn display_and_merge_io_stats() {
        let mut a = IoStats {
            seq_reads: 10,
            rand_reads: 4,
            writes: 2,
        };
        assert_eq!(a.to_string(), "10 seq + 4 rand reads (14 total), 2 writes");
        a += IoStats {
            seq_reads: 1,
            rand_reads: u64::MAX,
            writes: 0,
        };
        assert_eq!(a.seq_reads, 11);
        assert_eq!(a.rand_reads, u64::MAX, "merge saturates");
        assert_eq!(a.writes, 2);
    }

    #[test]
    fn attached_metrics_mirror_io_events() {
        let registry = Registry::new();
        let (disk, f) = disk_with_file(10);
        disk.set_metrics(Some(DiskMetrics::register(&registry, "t1")));
        disk.read_scan(f, 0, 10).unwrap(); // 1 rand + 9 seq
        disk.read_run(f, 0, 2).unwrap(); // head at 10 → 2 rand
        disk.append_page(f, &full_page(64, 1)).unwrap();
        assert_eq!(registry.counter("disk.seq_reads", "t1").get(), 9);
        assert_eq!(registry.counter("disk.rand_reads", "t1").get(), 3);
        assert_eq!(registry.counter("disk.writes", "t1").get(), 1);
        // Detach: further I/O leaves the counters untouched.
        disk.set_metrics(None);
        disk.read_run(f, 0, 2).unwrap();
        assert_eq!(registry.counter("disk.rand_reads", "t1").get(), 3);
    }

    #[test]
    fn attached_metrics_time_reads_and_writes() {
        let registry = Registry::new();
        let (disk, f) = disk_with_file(10);
        let metrics = DiskMetrics::register(&registry, "t1");
        disk.set_metrics(Some(metrics.clone()));
        disk.read_scan(f, 0, 10).unwrap();
        disk.read_run(f, 0, 2).unwrap();
        disk.append_page(f, &full_page(64, 1)).unwrap();
        disk.write_page(f, 0, &full_page(64, 2)).unwrap();
        assert_eq!(metrics.read_wall_ns().count(), 2);
        assert_eq!(metrics.write_wall_ns().count(), 2);
        assert!(metrics.read_wall_ns().max() > 0);
        assert!(metrics.read_wall_ns().quantile(0.5) > 0);
    }

    #[test]
    fn charge_run_accounts_without_data() {
        let disk = DiskSim::new(4096);
        let f = disk.create_file("ghost").unwrap();
        disk.charge_run(f, 0, 100);
        disk.charge_run(f, 100, 50);
        let s = disk.stats();
        assert_eq!(s.rand_reads, 100);
        assert_eq!(s.seq_reads, 50);
    }

    // ---- page-header and fault-injection coverage ----

    #[test]
    fn crc32_matches_known_vector() {
        // The IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn kinded_files_round_trip_and_verify() {
        let disk = DiskSim::new(16);
        let f = disk
            .create_file_with_kind("docs", PageKind::Documents)
            .unwrap();
        assert_eq!(disk.file_kind(f), PageKind::Documents);
        disk.append_page(f, &full_page(16, 5)).unwrap();
        assert_eq!(disk.read_page(f, 0).unwrap()[0], 5);
    }

    #[test]
    fn payload_bit_flip_surfaces_corrupt_with_context() {
        let (disk, f) = disk_with_file(4);
        // Offset past the 64-bit header lands in the payload.
        disk.flip_bit(f, 2, (PAGE_HEADER_BYTES as u64) * 8 + 13)
            .unwrap();
        disk.read_page(f, 1).unwrap(); // untouched pages still read
        let err = disk.read_run(f, 0, 4).unwrap_err();
        match err {
            Error::Corrupt(msg) => {
                assert!(msg.contains("test"), "{msg}");
                assert!(msg.contains("page 2"), "{msg}");
                assert!(msg.contains("checksum"), "{msg}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn header_bit_flips_are_detected_too() {
        // Byte 0-1: magic; byte 2: version; byte 3: kind; bytes 4-7: CRC.
        for (byte, what) in [
            (0u64, "magic"),
            (2, "version"),
            (3, "kind"),
            (5, "checksum"),
        ] {
            let (disk, f) = disk_with_file(2);
            disk.flip_bit(f, 0, byte * 8).unwrap();
            let err = disk.read_page(f, 0).unwrap_err();
            match err {
                Error::Corrupt(msg) => assert!(msg.contains(what), "{what}: {msg}"),
                other => panic!("expected Corrupt for {what}, got {other:?}"),
            }
        }
    }

    #[test]
    fn transient_faults_are_retried_and_absorbed() {
        let (disk, f) = disk_with_file(6);
        disk.set_fault_plan(FaultPlan::new().with_fault(
            f,
            2,
            0,
            FaultKind::TransientRead { failures: 1 },
        ));
        let pages = disk.read_run(f, 0, 6).unwrap();
        assert_eq!(pages.len(), 6);
        let fs = disk.fault_stats();
        assert_eq!(fs.injected_transient, 1);
        assert_eq!(fs.retries, 1);
        assert_eq!(fs.gave_up, 0);
        assert!(fs.backoff_us > 0, "exponential default backoff accrues");
        // Cold run of 6 pages + 1 re-read of the faulted page.
        assert_eq!(disk.stats().rand_reads, 7);
        assert_eq!(disk.pending_faults(), 0);
    }

    #[test]
    fn exhausted_retries_give_up_with_typed_error() {
        let (disk, f) = disk_with_file(3);
        disk.set_retry_policy(RetryPolicy {
            max_attempts: 3,
            backoff: Backoff::Fixed(10),
            jitter_seed: None,
            max_total_backoff_us: u64::MAX,
        });
        disk.set_fault_plan(FaultPlan::new().with_fault(
            f,
            1,
            0,
            FaultKind::TransientRead { failures: 5 },
        ));
        let err = disk.read_run(f, 0, 3).unwrap_err();
        assert_eq!(
            err,
            Error::Io {
                file: "test".into(),
                page: 1,
                attempts: 3
            }
        );
        let fs = disk.fault_stats();
        assert_eq!(fs.gave_up, 1);
        assert_eq!(fs.retries, 2);
        assert_eq!(fs.backoff_us, 20);
        // The page recovers once the fault is spent: re-read succeeds.
        assert!(disk.read_page(f, 1).is_ok());
    }

    #[test]
    fn latency_spike_prices_the_run_at_the_random_rate() {
        let (disk, f) = disk_with_file(8);
        disk.set_fault_plan(FaultPlan::new().with_fault(f, 5, 0, FaultKind::LatencySpike));
        disk.read_run(f, 0, 4).unwrap(); // cold → 4 rand
        disk.read_run(f, 4, 4).unwrap(); // continuation, but spiked → 4 rand
        let s = disk.stats();
        assert_eq!(s.rand_reads, 8);
        assert_eq!(s.seq_reads, 0);
        assert_eq!(disk.fault_stats().injected_latency, 1);
    }

    #[test]
    fn torn_write_is_detected_on_next_read() {
        let disk = DiskSim::new(16);
        let f = disk.create_file("torn").unwrap();
        disk.set_fault_plan(FaultPlan::new().with_fault(f, 0, 0, FaultKind::TornWrite));
        disk.append_page(f, &[0xAB; 16]).unwrap();
        assert_eq!(disk.fault_stats().injected_torn, 1);
        let err = disk.read_page(f, 0).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let f = FileId(0);
        let targets: Vec<(FileId, u64)> = (0..16).map(|p| (f, p)).collect();
        let a = FaultPlan::seeded(7, &targets);
        let b = FaultPlan::seeded(7, &targets);
        let c = FaultPlan::seeded(8, &targets);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
        assert!(a
            .faults()
            .iter()
            .all(|fl| !matches!(fl.kind, FaultKind::TornWrite)));
    }

    #[test]
    fn fault_events_mirror_into_registry() {
        let registry = Registry::new();
        let (disk, f) = disk_with_file(4);
        disk.set_metrics(Some(DiskMetrics::register(&registry, "chaos")));
        disk.set_fault_plan(
            FaultPlan::new()
                .with_fault(f, 0, 0, FaultKind::TransientRead { failures: 1 })
                .with_fault(f, 3, 0, FaultKind::LatencySpike),
        );
        disk.read_run(f, 0, 4).unwrap();
        assert_eq!(registry.counter("faults.transient", "chaos").get(), 1);
        assert_eq!(registry.counter("faults.latency", "chaos").get(), 1);
        assert_eq!(registry.counter("disk.retries", "chaos").get(), 1);
        assert_eq!(registry.counter("disk.gave_up", "chaos").get(), 0);
    }

    #[test]
    fn backoff_disciplines_scale_as_documented() {
        assert_eq!(Backoff::None.delay_us(2), 0);
        assert_eq!(Backoff::Fixed(50).delay_us(4), 50);
        let e = Backoff::Exponential { base_us: 100 };
        assert_eq!(e.delay_us(2), 100);
        assert_eq!(e.delay_us(3), 200);
        assert_eq!(e.delay_us(4), 400);
    }

    #[test]
    fn jittered_backoff_desynchronizes_targets_deterministically() {
        // The regression this guards: a fixed backoff gives every worker
        // the *same* retry schedule, so workers that fault together retry
        // together, re-colliding on every attempt. Jitter must (a) vary
        // the delay across targets, (b) stay reproducible per target, and
        // (c) stay within [base/2, base].
        let policy = RetryPolicy {
            backoff: Backoff::Fixed(1_000),
            ..RetryPolicy::default()
        };
        let delays: Vec<u64> = (0..16u64)
            .map(|page| policy.delay_us(FileId(0), page, 2))
            .collect();
        let distinct: std::collections::HashSet<u64> = delays.iter().copied().collect();
        assert!(
            distinct.len() > 8,
            "16 targets produced only {} distinct delays: {delays:?}",
            distinct.len()
        );
        for (page, &d) in delays.iter().enumerate() {
            assert!((500..=1_000).contains(&d), "page {page}: {d}");
            assert_eq!(
                d,
                policy.delay_us(FileId(0), page as u64, 2),
                "reproducible"
            );
        }
        // Different files desynchronize too, and jitter can be turned off.
        assert_ne!(
            (0..16u64)
                .map(|p| policy.delay_us(FileId(1), p, 2))
                .collect::<Vec<_>>(),
            delays
        );
        let plain = RetryPolicy {
            jitter_seed: None,
            ..policy
        };
        assert_eq!(plain.delay_us(FileId(0), 3, 2), 1_000);
    }

    #[test]
    fn total_backoff_per_read_is_capped() {
        // Many faulted pages in one run under an exponential policy would
        // accrue unbounded wall time; the cap bounds the sum.
        let (disk, f) = disk_with_file(8);
        disk.set_retry_policy(RetryPolicy {
            max_attempts: 4,
            backoff: Backoff::Exponential { base_us: 1_000 },
            jitter_seed: None,
            max_total_backoff_us: 2_500,
        });
        let mut plan = FaultPlan::new();
        for page in 0..8 {
            plan = plan.with_fault(f, page, 0, FaultKind::TransientRead { failures: 3 });
        }
        disk.set_fault_plan(plan);
        let pages = disk.read_run(f, 0, 8).unwrap();
        assert_eq!(pages.len(), 8);
        let fs = disk.fault_stats();
        // Uncapped this would be 8 pages × (1000 + 2000 + 4000) = 56 000.
        assert_eq!(fs.backoff_us, 2_500, "cap bounds the operation's backoff");
        assert_eq!(fs.retries, 24, "retries still happen past the cap");
    }

    #[test]
    fn rename_file_replaces_the_destination() {
        let disk = DiskSim::new(16);
        let a = disk.create_file("a").unwrap();
        let b = disk.create_file("b").unwrap();
        disk.append_page(a, &full_page(16, 1)).unwrap();
        disk.append_page(b, &full_page(16, 2)).unwrap();
        disk.rename_file("a", "b").unwrap();
        assert_eq!(disk.file_names(), vec!["b".to_string()]);
        assert_eq!(disk.file_by_name("b"), Some(a));
        assert_eq!(disk.file_name(a), "b");
        assert_eq!(disk.read_page(a, 0).unwrap()[0], 1, "a's pages survive");
        // The replaced file's pages are gone; its stale handle reads OOB.
        assert_eq!(disk.num_pages(b), 0);
        assert!(disk.read_page(b, 0).is_err());
        // Renaming a missing file is a typed error; self-rename is a no-op.
        assert!(matches!(
            disk.rename_file("ghost", "x"),
            Err(Error::NotFound(_))
        ));
        disk.rename_file("b", "b").unwrap();
        assert_eq!(disk.read_page(a, 0).unwrap()[0], 1);
    }

    #[test]
    fn remove_file_frees_the_name_and_pages() {
        let disk = DiskSim::new(16);
        let a = disk.create_file("a").unwrap();
        disk.append_page(a, &full_page(16, 7)).unwrap();
        disk.remove_file("a").unwrap();
        assert!(disk.file_by_name("a").is_none());
        assert!(disk.file_names().is_empty());
        assert!(disk.read_page(a, 0).is_err());
        assert!(matches!(disk.remove_file("a"), Err(Error::NotFound(_))));
        // The name can be reused by a fresh file.
        let a2 = disk.create_file("a").unwrap();
        assert_ne!(a, a2);
    }
}
