//! The simulated disk.
//!
//! A [`DiskSim`] holds a set of named, page-structured files entirely in
//! memory and *accounts* for I/O instead of performing it. The accounting
//! follows section 3 of the paper:
//!
//! * a read run that begins exactly where the previous read on the device
//!   left off is **sequential** — all of its pages cost 1 unit;
//! * any other run is **random** — *all* of its pages cost `α` units. This
//!   matches the paper's `N·⌈S⌉·α` estimate for document-at-a-time access
//!   and `T₂·q·⌈J₁⌉·α` for inverted-entry fetches, both of which charge the
//!   full run at the random rate;
//! * in **interference mode** every run is random: the device is assumed to
//!   serve other obligations between any two of our requests, which is the
//!   worst-case scenario behind the `hhr`, `hvr` and `vvr` formulas.
//!
//! Head positions are tracked **per file** — the paper's sequential
//! estimates assume "each document collection is read by a dedicated drive
//! with no or little interference from other I/O requests" (section 5.1),
//! so interleaved scans of two files (e.g. VVM's merge) each stay
//! sequential. The shared-device worst case is modeled by interference
//! mode, which is what the `hhr`/`hvr`/`vvr` formulas describe.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use textjoin_common::{Error, Result};
use textjoin_obs::{Counter, Registry};

/// Identifier of a file within a [`DiskSim`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FileId(u32);

impl FileId {
    /// The raw index.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// Cumulative I/O counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read at the sequential rate.
    pub seq_reads: u64,
    /// Pages read at the random rate.
    pub rand_reads: u64,
    /// Pages written (always sequential appends in this workspace).
    pub writes: u64,
}

impl IoStats {
    /// Total pages read.
    #[inline]
    pub fn total_reads(&self) -> u64 {
        self.seq_reads + self.rand_reads
    }

    /// The paper's cost metric: sequential pages cost 1, random pages `α`.
    #[inline]
    pub fn cost(&self, alpha: f64) -> f64 {
        self.seq_reads as f64 + self.rand_reads as f64 * alpha
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            seq_reads: self.seq_reads - earlier.seq_reads,
            rand_reads: self.rand_reads - earlier.rand_reads,
            writes: self.writes - earlier.writes,
        }
    }

    /// Saturating element-wise accumulation — the aggregation parallel
    /// executors and the sim harness need when summing per-worker or
    /// per-run counters.
    pub fn merge(&mut self, other: &IoStats) {
        self.seq_reads = self.seq_reads.saturating_add(other.seq_reads);
        self.rand_reads = self.rand_reads.saturating_add(other.rand_reads);
        self.writes = self.writes.saturating_add(other.writes);
    }
}

impl std::ops::AddAssign<IoStats> for IoStats {
    fn add_assign(&mut self, other: IoStats) {
        self.merge(&other);
    }
}

impl fmt::Display for IoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} seq + {} rand reads ({} total), {} writes",
            self.seq_reads,
            self.rand_reads,
            self.total_reads(),
            self.writes
        )
    }
}

/// Counter handles a [`DiskSim`] emits read/write events into when
/// attached via [`DiskSim::set_metrics`].
#[derive(Clone)]
pub struct DiskMetrics {
    seq_reads: Counter,
    rand_reads: Counter,
    writes: Counter,
}

impl DiskMetrics {
    /// Registers the three disk counters under `label` (typically the
    /// experiment or catalog name).
    pub fn register(registry: &Registry, label: &str) -> Self {
        Self {
            seq_reads: registry.counter("disk.seq_reads", label),
            rand_reads: registry.counter("disk.rand_reads", label),
            writes: registry.counter("disk.writes", label),
        }
    }
}

#[derive(Default)]
struct FileData {
    name: String,
    pages: Vec<Arc<[u8]>>,
}

struct HeadState {
    /// Per-file head positions (dedicated drive per file): the next page a
    /// sequential continuation would start at.
    heads: HashMap<FileId, u64>,
    stats: IoStats,
    interference: bool,
    /// Optional observability sink; updated under the same lock that
    /// already guards `stats`, so attaching metrics adds no extra
    /// synchronisation to the read path.
    metrics: Option<DiskMetrics>,
}

impl HeadState {
    #[inline]
    fn charge_seq(&mut self, pages: u64) {
        self.stats.seq_reads += pages;
        if let Some(m) = &self.metrics {
            m.seq_reads.inc_by(pages);
        }
    }

    #[inline]
    fn charge_rand(&mut self, pages: u64) {
        self.stats.rand_reads += pages;
        if let Some(m) = &self.metrics {
            m.rand_reads.inc_by(pages);
        }
    }

    #[inline]
    fn charge_write(&mut self) {
        self.stats.writes += 1;
        if let Some(m) = &self.metrics {
            m.writes.inc();
        }
    }
}

/// An in-memory disk simulator with sequential/random accounting.
///
/// All methods take `&self`; internal state is protected by mutexes so a
/// `DiskSim` can be shared (e.g. between a document store and its inverted
/// file) without threading `&mut` through every layer.
pub struct DiskSim {
    page_size: usize,
    files: Mutex<Vec<FileData>>,
    names: Mutex<HashMap<String, FileId>>,
    state: Mutex<HeadState>,
}

impl DiskSim {
    /// Creates an empty disk with the given page size.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            files: Mutex::new(Vec::new()),
            names: Mutex::new(HashMap::new()),
            state: Mutex::new(HeadState {
                heads: HashMap::new(),
                stats: IoStats::default(),
                interference: false,
                metrics: None,
            }),
        }
    }

    /// The page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Creates a new empty file. Names are informational but must be unique.
    pub fn create_file(&self, name: &str) -> Result<FileId> {
        let mut names = self.names.lock();
        if names.contains_key(name) {
            return Err(Error::InvalidArgument(format!(
                "file '{name}' already exists"
            )));
        }
        let mut files = self.files.lock();
        let id = FileId(files.len() as u32);
        files.push(FileData {
            name: name.to_string(),
            pages: Vec::new(),
        });
        names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a file by name.
    pub fn file_by_name(&self, name: &str) -> Option<FileId> {
        self.names.lock().get(name).copied()
    }

    /// The name a file was created with.
    pub fn file_name(&self, file: FileId) -> String {
        self.files.lock()[file.0 as usize].name.clone()
    }

    /// Number of pages currently in the file.
    pub fn num_pages(&self, file: FileId) -> u64 {
        self.files.lock()[file.0 as usize].pages.len() as u64
    }

    /// Appends a page to the file, returning its page number. The payload is
    /// zero-padded (or must fit) to the page size. Writes are not charged to
    /// the read-cost model — the paper's analysis covers query processing,
    /// not index construction — but are counted in [`IoStats::writes`].
    pub fn append_page(&self, file: FileId, data: &[u8]) -> Result<u64> {
        if data.len() > self.page_size {
            return Err(Error::InvalidArgument(format!(
                "payload of {} bytes exceeds page size {}",
                data.len(),
                self.page_size
            )));
        }
        let mut files = self.files.lock();
        let f = &mut files[file.0 as usize];
        let mut page = vec![0u8; self.page_size];
        page[..data.len()].copy_from_slice(data);
        f.pages.push(page.into());
        let len = f.pages.len() as u64;
        drop(files);
        self.state.lock().charge_write();
        Ok(len - 1)
    }

    /// Overwrites an existing page in place (used by mutable structures
    /// such as the B+tree during inserts). Counted in [`IoStats::writes`].
    pub fn write_page(&self, file: FileId, page: u64, data: &[u8]) -> Result<()> {
        if data.len() > self.page_size {
            return Err(Error::InvalidArgument(format!(
                "payload of {} bytes exceeds page size {}",
                data.len(),
                self.page_size
            )));
        }
        let mut files = self.files.lock();
        let f = &mut files[file.0 as usize];
        let n = f.pages.len() as u64;
        if page >= n {
            return Err(Error::PageOutOfBounds {
                file: f.name.clone(),
                page,
                len: n,
            });
        }
        let mut buf = vec![0u8; self.page_size];
        buf[..data.len()].copy_from_slice(data);
        f.pages[page as usize] = buf.into();
        drop(files);
        self.state.lock().charge_write();
        Ok(())
    }

    /// Enables or disables interference mode (every run random).
    pub fn set_interference(&self, on: bool) {
        self.state.lock().interference = on;
    }

    /// Whether interference mode is on.
    pub fn interference(&self) -> bool {
        self.state.lock().interference
    }

    /// Snapshot of the cumulative I/O counters.
    pub fn stats(&self) -> IoStats {
        self.state.lock().stats
    }

    /// Resets the I/O counters (head position and interference mode are
    /// kept).
    pub fn reset_stats(&self) {
        self.state.lock().stats = IoStats::default();
    }

    /// Forgets all head positions, so the next read of any file is random.
    /// Used between experiment phases.
    pub fn reset_head(&self) {
        self.state.lock().heads.clear();
    }

    /// Reads a single page. Equivalent to `read_run(file, page, 1)`.
    pub fn read_page(&self, file: FileId, page: u64) -> Result<Arc<[u8]>> {
        Ok(self
            .read_run(file, page, 1)?
            .pop()
            .expect("run of length 1"))
    }

    /// Reads `len` consecutive pages starting at `start`, classifying the
    /// whole run as sequential (it continues the head position) or random
    /// (all pages charged at the `α` rate), per the paper's model.
    pub fn read_run(&self, file: FileId, start: u64, len: u64) -> Result<Vec<Arc<[u8]>>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let files = self.files.lock();
        let f = &files[file.0 as usize];
        let n = f.pages.len() as u64;
        if start + len > n {
            return Err(Error::PageOutOfBounds {
                file: f.name.clone(),
                page: start + len - 1,
                len: n,
            });
        }
        let out: Vec<Arc<[u8]>> = f.pages[start as usize..(start + len) as usize]
            .iter()
            .map(Arc::clone)
            .collect();
        drop(files);

        let mut st = self.state.lock();
        let sequential = !st.interference && st.heads.get(&file) == Some(&start);
        if sequential {
            st.charge_seq(len);
        } else {
            st.charge_rand(len);
        }
        st.heads.insert(file, start + len);
        Ok(out)
    }

    /// Reads `len` consecutive pages as a *streamed scan*: only the first
    /// page pays the seek (random) when the run does not continue the head
    /// position; the rest stream sequentially. This is the pricing of the
    /// paper's full-structure scans (`D` for a collection, `I` for an
    /// inverted file, `Bt` for the B+tree), in contrast to [`read_run`]
    /// which prices short random fetches (`⌈S⌉·α`, `⌈J⌉·α`) entirely at the
    /// random rate. In interference mode every page is random, matching the
    /// worst-case variants.
    ///
    /// [`read_run`]: Self::read_run
    pub fn read_scan(&self, file: FileId, start: u64, len: u64) -> Result<Vec<Arc<[u8]>>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let files = self.files.lock();
        let f = &files[file.0 as usize];
        let n = f.pages.len() as u64;
        if start + len > n {
            return Err(Error::PageOutOfBounds {
                file: f.name.clone(),
                page: start + len - 1,
                len: n,
            });
        }
        let out: Vec<Arc<[u8]>> = f.pages[start as usize..(start + len) as usize]
            .iter()
            .map(Arc::clone)
            .collect();
        drop(files);

        let mut st = self.state.lock();
        if st.interference {
            st.charge_rand(len);
        } else {
            let continues = st.heads.get(&file) == Some(&start);
            if continues {
                st.charge_seq(len);
            } else {
                st.charge_rand(1);
                st.charge_seq(len - 1);
            }
        }
        st.heads.insert(file, start + len);
        Ok(out)
    }

    /// Charges a synthetic run without materialising data — used by the
    /// simulation harness when running the cost accounting at paper scale
    /// where the files are never populated.
    pub fn charge_run(&self, file: FileId, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let mut st = self.state.lock();
        let sequential = !st.interference && st.heads.get(&file) == Some(&start);
        if sequential {
            st.charge_seq(len);
        } else {
            st.charge_rand(len);
        }
        st.heads.insert(file, start + len);
    }

    /// Attaches (or with `None`, detaches) an observability sink: every
    /// page read/write is mirrored into the registered counters. Updates
    /// happen under the existing accounting lock, so the read path gains
    /// no extra synchronisation.
    pub fn set_metrics(&self, metrics: Option<DiskMetrics>) {
        self.state.lock().metrics = metrics;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk_with_file(pages: u64) -> (DiskSim, FileId) {
        let disk = DiskSim::new(64);
        let f = disk.create_file("test").unwrap();
        for i in 0..pages {
            disk.append_page(f, &[i as u8]).unwrap();
        }
        disk.reset_stats();
        disk.reset_head();
        (disk, f)
    }

    #[test]
    fn sequential_scan_costs_one_random_then_sequential() {
        let (disk, f) = disk_with_file(10);
        // First run: head unknown → random. Continuation runs: sequential.
        disk.read_run(f, 0, 4).unwrap();
        disk.read_run(f, 4, 6).unwrap();
        let s = disk.stats();
        assert_eq!(s.rand_reads, 4);
        assert_eq!(s.seq_reads, 6);
    }

    #[test]
    fn non_contiguous_run_is_fully_random() {
        let (disk, f) = disk_with_file(10);
        disk.read_run(f, 0, 2).unwrap();
        disk.read_run(f, 5, 3).unwrap(); // skips pages 2-4
        let s = disk.stats();
        assert_eq!(s.rand_reads, 5); // 2 (cold head) + 3 (jump)
        assert_eq!(s.seq_reads, 0);
    }

    #[test]
    fn re_reading_same_page_is_random() {
        let (disk, f) = disk_with_file(3);
        disk.read_page(f, 1).unwrap();
        disk.read_page(f, 1).unwrap(); // head is now at page 2; going back seeks
        assert_eq!(disk.stats().rand_reads, 2);
    }

    #[test]
    fn per_file_heads_keep_interleaved_scans_sequential() {
        // The dedicated-drive assumption of section 5.1: a merge that
        // alternates between two files keeps each file's scan sequential.
        let disk = DiskSim::new(64);
        let a = disk.create_file("a").unwrap();
        let b = disk.create_file("b").unwrap();
        for _ in 0..4 {
            disk.append_page(a, &[]).unwrap();
            disk.append_page(b, &[]).unwrap();
        }
        disk.reset_stats();
        disk.read_run(a, 0, 2).unwrap();
        disk.read_run(b, 0, 2).unwrap(); // cold head on b: random
        disk.read_run(a, 2, 2).unwrap(); // continues a: sequential
        disk.read_run(b, 2, 2).unwrap(); // continues b: sequential
        let s = disk.stats();
        assert_eq!(s.rand_reads, 4);
        assert_eq!(s.seq_reads, 4);
    }

    #[test]
    fn interference_makes_everything_random() {
        let (disk, f) = disk_with_file(8);
        disk.set_interference(true);
        disk.read_run(f, 0, 4).unwrap();
        disk.read_run(f, 4, 4).unwrap(); // would be sequential otherwise
        let s = disk.stats();
        assert_eq!(s.rand_reads, 8);
        assert_eq!(s.seq_reads, 0);
    }

    #[test]
    fn read_scan_pays_one_seek_then_streams() {
        let (disk, f) = disk_with_file(10);
        disk.read_scan(f, 0, 10).unwrap();
        let s = disk.stats();
        assert_eq!(s.rand_reads, 1);
        assert_eq!(s.seq_reads, 9);
    }

    #[test]
    fn read_scan_continuation_is_fully_sequential() {
        let (disk, f) = disk_with_file(10);
        disk.read_scan(f, 0, 4).unwrap();
        disk.read_scan(f, 4, 6).unwrap();
        let s = disk.stats();
        assert_eq!(s.rand_reads, 1);
        assert_eq!(s.seq_reads, 9);
    }

    #[test]
    fn read_scan_under_interference_is_all_random() {
        let (disk, f) = disk_with_file(10);
        disk.set_interference(true);
        disk.read_scan(f, 0, 10).unwrap();
        assert_eq!(disk.stats().rand_reads, 10);
    }

    #[test]
    fn write_page_overwrites_in_place() {
        let (disk, f) = disk_with_file(3);
        disk.write_page(f, 1, &[42]).unwrap();
        assert_eq!(disk.read_page(f, 1).unwrap()[0], 42);
        assert!(disk.write_page(f, 3, &[1]).is_err());
        assert_eq!(disk.num_pages(f), 3);
    }

    #[test]
    fn cost_weights_random_by_alpha() {
        let s = IoStats {
            seq_reads: 10,
            rand_reads: 4,
            writes: 0,
        };
        assert_eq!(s.cost(5.0), 10.0 + 20.0);
        assert_eq!(s.total_reads(), 14);
    }

    #[test]
    fn stats_since_subtracts() {
        let (disk, f) = disk_with_file(6);
        disk.read_run(f, 0, 2).unwrap();
        let snap = disk.stats();
        disk.read_run(f, 2, 4).unwrap();
        let delta = disk.stats().since(&snap);
        assert_eq!(delta.seq_reads, 4);
        assert_eq!(delta.rand_reads, 0);
    }

    #[test]
    fn out_of_bounds_read_is_reported() {
        let (disk, f) = disk_with_file(2);
        let err = disk.read_run(f, 1, 5).unwrap_err();
        assert!(matches!(err, Error::PageOutOfBounds { .. }));
    }

    #[test]
    fn duplicate_file_names_rejected() {
        let disk = DiskSim::new(64);
        disk.create_file("x").unwrap();
        assert!(disk.create_file("x").is_err());
        assert!(disk.file_by_name("x").is_some());
        assert!(disk.file_by_name("y").is_none());
    }

    #[test]
    fn append_returns_page_numbers_and_pads() {
        let disk = DiskSim::new(8);
        let f = disk.create_file("f").unwrap();
        assert_eq!(disk.append_page(f, &[1, 2, 3]).unwrap(), 0);
        assert_eq!(disk.append_page(f, &[9; 8]).unwrap(), 1);
        assert!(disk.append_page(f, &[0; 9]).is_err());
        let p = disk.read_page(f, 0).unwrap();
        assert_eq!(&p[..4], &[1, 2, 3, 0]);
        assert_eq!(disk.stats().writes, 2);
    }

    #[test]
    fn display_and_merge_io_stats() {
        let mut a = IoStats {
            seq_reads: 10,
            rand_reads: 4,
            writes: 2,
        };
        assert_eq!(a.to_string(), "10 seq + 4 rand reads (14 total), 2 writes");
        a += IoStats {
            seq_reads: 1,
            rand_reads: u64::MAX,
            writes: 0,
        };
        assert_eq!(a.seq_reads, 11);
        assert_eq!(a.rand_reads, u64::MAX, "merge saturates");
        assert_eq!(a.writes, 2);
    }

    #[test]
    fn attached_metrics_mirror_io_events() {
        let registry = Registry::new();
        let (disk, f) = disk_with_file(10);
        disk.set_metrics(Some(DiskMetrics::register(&registry, "t1")));
        disk.read_scan(f, 0, 10).unwrap(); // 1 rand + 9 seq
        disk.read_run(f, 0, 2).unwrap(); // head at 10 → 2 rand
        disk.append_page(f, &[1]).unwrap();
        assert_eq!(registry.counter("disk.seq_reads", "t1").get(), 9);
        assert_eq!(registry.counter("disk.rand_reads", "t1").get(), 3);
        assert_eq!(registry.counter("disk.writes", "t1").get(), 1);
        // Detach: further I/O leaves the counters untouched.
        disk.set_metrics(None);
        disk.read_run(f, 0, 2).unwrap();
        assert_eq!(registry.counter("disk.rand_reads", "t1").get(), 3);
    }

    #[test]
    fn charge_run_accounts_without_data() {
        let disk = DiskSim::new(4096);
        let f = disk.create_file("ghost").unwrap();
        disk.charge_run(f, 0, 100);
        disk.charge_run(f, 100, 50);
        let s = disk.stats();
        assert_eq!(s.rand_reads, 100);
        assert_eq!(s.seq_reads, 50);
    }
}
