//! Simulated storage layer with the paper's I/O cost model.
//!
//! Section 3 of the paper abstracts the hardware to a single cost unit —
//! page I/Os — with one refinement: a random page read costs `α` times a
//! sequential one because of the extra seek and rotational delay. Documents
//! and inverted-file entries are assumed to be stored *tightly packed in
//! consecutive storage locations*, so a full scan of a structure of `D`
//! pages costs `D` sequential I/Os, while fetching `N` documents one at a
//! time in random order costs about `N·⌈S⌉·α`.
//!
//! [`DiskSim`] reproduces exactly this accounting: every read is classified
//! as sequential (it continues the head position of the previous read) or
//! random (everything else), and [`IoStats::cost`] charges `seq + α·rand`.
//! An *interference mode* reclassifies every run as random, modeling the
//! paper's worst-case `hhr`/`hvr`/`vvr` scenario in which the I/O device
//! serves other obligations between any two requests.
//!
//! [`BufferPool`] is a budgeted LRU page cache; [`MemTracker`] enforces the
//! byte-level memory budget `B·P` that every join executor must respect.
//! [`Prefetcher`] adds sequential-run readahead on top of the pool: it
//! detects adjacent page demands and issues windowed scan-priced batches,
//! with issued/hit/wasted counters exported through `textjoin-obs`.
//!
//! The layer is also chaos-ready: every page carries a checksummed header
//! verified on read, a seeded [`FaultPlan`] injects deterministic device
//! misbehaviour, and a [`RetryPolicy`] absorbs transient read failures —
//! see the [`disk`] module docs.

pub mod buffer;
pub mod disk;
pub mod memory;
pub mod span;

pub use buffer::{
    BufferPool, BufferStats, PoolMetrics, PrefetchMetrics, PrefetchStats, Prefetcher,
    DEFAULT_PREFETCH_WINDOW,
};
pub use disk::{
    Backoff, DiskMetrics, DiskSim, Fault, FaultKind, FaultPlan, FaultStats, FileId, IoStats,
    PageKind, PageLatency, RetryPolicy, PAGE_FORMAT_VERSION, PAGE_HEADER_BYTES,
};
pub use memory::MemTracker;
pub use span::ByteSpan;
