//! A budgeted LRU page cache over the simulated disk.
//!
//! The buffer pool gives document-at-a-time readers the behaviour the paper
//! assumes in section 5.1: when documents are smaller than a page, fetching
//! them one at a time touches each *page* at most once while it stays
//! resident, so a random scan of collection 1 costs `min{D₁, N₁}` random
//! I/Os rather than `N₁·⌈S₁⌉`.
//!
//! Reads go through [`BufferPool::get_run`]: pages already resident are
//! served from memory (no I/O charged), and each maximal missing sub-run is
//! fetched from the [`DiskSim`] as one run, so contiguous access patterns
//! keep their sequential pricing. Eviction is strict LRU over unpinned
//! pages.

use crate::disk::{DiskSim, FileId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;
use textjoin_common::Result;
use textjoin_obs::{Counter, Histogram, Registry, LATENCY_BOUNDS_NS};

/// Cache hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Pages served from the pool without I/O.
    pub hits: u64,
    /// Pages that had to be read from disk.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl fmt::Display for BufferStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} evictions",
            self.hits, self.misses, self.evictions
        )
    }
}

/// Counter handles a [`BufferPool`] emits hit/miss/eviction events into
/// when attached via [`BufferPool::set_metrics`].
#[derive(Clone)]
pub struct PoolMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    get_wall_ns: Histogram,
}

impl PoolMetrics {
    /// Registers the pool counters and the get-path latency histogram
    /// under `label`.
    pub fn register(registry: &Registry, label: &str) -> Self {
        Self {
            hits: registry.counter("buffer.hits", label),
            misses: registry.counter("buffer.misses", label),
            evictions: registry.counter("buffer.evictions", label),
            get_wall_ns: registry.histogram("buffer.get_wall_ns", label, &LATENCY_BOUNDS_NS),
        }
    }

    /// Wall-clock latency distribution of [`BufferPool::get_run`] calls
    /// (hits and misses alike, so the hit/miss latency gap is visible).
    pub fn get_wall_ns(&self) -> &Histogram {
        &self.get_wall_ns
    }
}

type Key = (FileId, u64);

const NIL: usize = usize::MAX;

struct Slot {
    key: Key,
    data: Arc<[u8]>,
    prev: usize,
    next: usize,
}

/// Intrusive doubly-linked LRU over a slot arena. `head` is most recently
/// used, `tail` least recently used.
struct LruState {
    map: HashMap<Key, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    stats: BufferStats,
    /// Optional observability sink, updated under this same lock.
    metrics: Option<PoolMetrics>,
}

impl LruState {
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    fn insert(&mut self, key: Key, data: Arc<[u8]>) {
        debug_assert!(!self.map.contains_key(&key));
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "capacity > 0 guaranteed at construction");
            self.unlink(victim);
            let old_key = self.slots[victim].key;
            self.map.remove(&old_key);
            self.free.push(victim);
            self.stats.evictions += 1;
            if let Some(m) = &self.metrics {
                m.evictions.inc();
            }
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key,
                    data,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key,
                    data,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }
}

/// An LRU page cache of fixed capacity (in pages) over a [`DiskSim`].
pub struct BufferPool<'d> {
    disk: &'d DiskSim,
    state: Mutex<LruState>,
}

impl<'d> BufferPool<'d> {
    /// Creates a pool caching at most `capacity_pages` pages.
    ///
    /// # Panics
    /// Panics if `capacity_pages == 0`.
    pub fn new(disk: &'d DiskSim, capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "buffer pool needs at least one page");
        Self {
            disk,
            state: Mutex::new(LruState {
                map: HashMap::new(),
                slots: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                capacity: capacity_pages,
                stats: BufferStats::default(),
                metrics: None,
            }),
        }
    }

    /// The underlying disk.
    pub fn disk(&self) -> &'d DiskSim {
        self.disk
    }

    /// Cache capacity in pages.
    pub fn capacity(&self) -> usize {
        self.state.lock().capacity
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Whether the pool holds no pages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> BufferStats {
        self.state.lock().stats
    }

    /// Attaches (or with `None`, detaches) an observability sink: cache
    /// hits, misses and evictions are mirrored into the registered
    /// counters under the pool's existing lock.
    pub fn set_metrics(&self, metrics: Option<PoolMetrics>) {
        self.state.lock().metrics = metrics;
    }

    /// Whether a page is resident (does not touch recency).
    pub fn contains(&self, file: FileId, page: u64) -> bool {
        self.state.lock().map.contains_key(&(file, page))
    }

    /// Drops every cached page (counters are kept).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.map.clear();
        st.slots.clear();
        st.free.clear();
        st.head = NIL;
        st.tail = NIL;
    }

    /// Reads one page through the cache.
    pub fn get(&self, file: FileId, page: u64) -> Result<Arc<[u8]>> {
        Ok(self.get_run(file, page, 1)?.pop().expect("run of length 1"))
    }

    /// Reads `len` consecutive pages through the cache. Resident pages cost
    /// nothing; each maximal missing sub-run is fetched from disk as one
    /// run so contiguity (and with it the sequential discount) is preserved.
    pub fn get_run(&self, file: FileId, start: u64, len: u64) -> Result<Vec<Arc<[u8]>>> {
        self.get_priced(file, start, len, false)
    }

    /// Like [`get_run`](Self::get_run), but missing sub-runs are fetched
    /// with [`DiskSim::read_scan`] pricing: one seek then streaming, rather
    /// than all-or-nothing run classification. This is the right pricing
    /// for readahead inside a logically sequential scan — if another reader
    /// moved the device head, the batch pays a single seek (exactly what a
    /// page-at-a-time scan would have paid) instead of having the whole
    /// window reclassified as random.
    pub fn get_scan(&self, file: FileId, start: u64, len: u64) -> Result<Vec<Arc<[u8]>>> {
        self.get_priced(file, start, len, true)
    }

    fn get_priced(&self, file: FileId, start: u64, len: u64, scan: bool) -> Result<Vec<Arc<[u8]>>> {
        let started = Instant::now();
        let mut out: Vec<Option<Arc<[u8]>>> = vec![None; len as usize];

        // Pass 1: serve hits and find missing sub-runs.
        let mut missing_runs: Vec<(u64, u64)> = Vec::new(); // (start, len)
        let metrics;
        {
            let mut st = self.state.lock();
            let mut run_start: Option<u64> = None;
            let mut hits = 0u64;
            for i in 0..len {
                let page = start + i;
                if let Some(&idx) = st.map.get(&(file, page)) {
                    st.touch(idx);
                    hits += 1;
                    out[i as usize] = Some(Arc::clone(&st.slots[idx].data));
                    if let Some(rs) = run_start.take() {
                        missing_runs.push((rs, page - rs));
                    }
                } else if run_start.is_none() {
                    run_start = Some(page);
                }
            }
            if let Some(rs) = run_start {
                missing_runs.push((rs, start + len - rs));
            }
            st.stats.hits += hits;
            if let Some(m) = &st.metrics {
                if hits > 0 {
                    m.hits.inc_by(hits);
                }
            }
            metrics = st.metrics.clone();
        }

        // Pass 2: fetch missing runs (disk classifies them) and install.
        for (rs, rl) in missing_runs {
            let pages = if scan {
                self.disk.read_scan(file, rs, rl)?
            } else {
                self.disk.read_run(file, rs, rl)?
            };
            let mut st = self.state.lock();
            st.stats.misses += rl;
            if let Some(m) = &st.metrics {
                m.misses.inc_by(rl);
            }
            for (j, data) in pages.into_iter().enumerate() {
                let page = rs + j as u64;
                out[(page - start) as usize] = Some(Arc::clone(&data));
                if !st.map.contains_key(&(file, page)) {
                    st.insert((file, page), data);
                }
            }
        }

        if let Some(m) = &metrics {
            m.get_wall_ns.observe(started.elapsed().as_nanos() as u64);
        }
        Ok(out
            .into_iter()
            .map(|p| p.expect("all pages filled"))
            .collect())
    }
}

/// Default readahead window of a [`Prefetcher`], in pages.
pub const DEFAULT_PREFETCH_WINDOW: u64 = 8;

/// Readahead counters of one [`Prefetcher`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Pages fetched ahead of demand (batch length minus the demanded
    /// page). Always equals `hits + wasted` once the prefetcher is dropped.
    pub issued: u64,
    /// Demanded pages served from a previously issued batch without I/O.
    pub hits: u64,
    /// Prefetched pages that were never demanded (the scan jumped or
    /// ended first).
    pub wasted: u64,
}

impl fmt::Display for PrefetchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} issued, {} hits, {} wasted",
            self.issued, self.hits, self.wasted
        )
    }
}

/// Counter handles a [`Prefetcher`] mirrors its stats into when attached
/// at construction.
#[derive(Clone)]
pub struct PrefetchMetrics {
    issued: Counter,
    hits: Counter,
    wasted: Counter,
    batch_wall_ns: Histogram,
}

impl PrefetchMetrics {
    /// Registers `prefetch.issued` / `prefetch.hits` / `prefetch.wasted`
    /// counters and the `prefetch.batch_wall_ns` latency histogram under
    /// `label`.
    pub fn register(registry: &Registry, label: &str) -> Self {
        Self {
            issued: registry.counter("prefetch.issued", label),
            hits: registry.counter("prefetch.hits", label),
            wasted: registry.counter("prefetch.wasted", label),
            batch_wall_ns: registry.histogram("prefetch.batch_wall_ns", label, &LATENCY_BOUNDS_NS),
        }
    }

    /// Wall-clock latency distribution of issued readahead batches.
    pub fn batch_wall_ns(&self) -> &Histogram {
        &self.batch_wall_ns
    }
}

/// Sequential-run readahead over one file.
///
/// A `Prefetcher` sits between a page-at-a-time reader (a document or
/// inverted-file scanner) and the disk. It watches the demanded page
/// numbers; once two consecutive demands are adjacent it issues the next
/// `window` pages as one batched [`BufferPool::get_scan`], so a logically
/// sequential scan reaches the disk as a few large scan-priced reads
/// instead of `D` single-page reads — same page count, same seek count,
/// but each batch is one locking round-trip and one pricing decision.
/// Non-sequential demands fall back to single-page fetches and flush any
/// unconsumed readahead into the `wasted` counter.
pub struct Prefetcher<'d> {
    pool: BufferPool<'d>,
    file: FileId,
    window: u64,
    /// One past the last readable page — readahead never runs off the
    /// end of the file.
    end_page: u64,
    last_demanded: Option<u64>,
    /// Prefetched-but-not-yet-demanded page range `[start, end)`.
    outstanding: Option<(u64, u64)>,
    stats: PrefetchStats,
    metrics: Option<PrefetchMetrics>,
}

impl<'d> Prefetcher<'d> {
    /// A prefetcher over `file` (`num_pages` long) with the default
    /// 8-page window.
    pub fn new(disk: &'d DiskSim, file: FileId, num_pages: u64) -> Self {
        let window = DEFAULT_PREFETCH_WINDOW;
        Self {
            // window + 1 slots: a full readahead batch plus the page a
            // straddling document demands twice.
            pool: BufferPool::new(disk, window as usize + 1),
            file,
            window,
            end_page: num_pages,
            last_demanded: None,
            outstanding: None,
            stats: PrefetchStats::default(),
            metrics: None,
        }
    }

    /// Overrides the readahead window (clamped to at least 1 page).
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = window.max(1);
        self.pool = BufferPool::new(self.pool.disk(), self.window as usize + 1);
        self
    }

    /// Attaches an observability sink mirroring the prefetch counters.
    pub fn with_metrics(mut self, metrics: Option<PrefetchMetrics>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Readahead counters so far.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    fn flush_outstanding(&mut self) {
        if let Some((s, e)) = self.outstanding.take() {
            self.waste(e - s);
        }
    }

    fn waste(&mut self, pages: u64) {
        if pages > 0 {
            self.stats.wasted += pages;
            if let Some(m) = &self.metrics {
                m.wasted.inc_by(pages);
            }
        }
    }

    /// Demand-reads one page. Sequential demand patterns are detected and
    /// served from readahead batches; anything else degrades to plain
    /// single-page reads.
    pub fn get(&mut self, page: u64) -> Result<Arc<[u8]>> {
        // A document ending mid-page makes its successor demand the same
        // page again; it is resident, and the readahead state is untouched.
        if self.last_demanded == Some(page) {
            return self.pool.get(self.file, page);
        }
        if let Some((s, e)) = self.outstanding {
            if (s..e).contains(&page) {
                // Served from readahead. Pages skipped over were wasted.
                self.waste(page - s);
                self.stats.hits += 1;
                if let Some(m) = &self.metrics {
                    m.hits.inc();
                }
                self.outstanding = if page + 1 < e {
                    Some((page + 1, e))
                } else {
                    None
                };
                self.last_demanded = Some(page);
                return self.pool.get(self.file, page);
            }
            self.flush_outstanding();
        }
        let sequential = self.last_demanded == Some(page.wrapping_sub(1));
        self.last_demanded = Some(page);
        if sequential && self.window > 1 && page < self.end_page {
            // The scan continues: fetch a window in one scan-priced batch.
            // The batch covers the demanded page, so a batch-wide failure
            // (a fault or corrupt page anywhere in the window) fails this
            // demand — speculation must not absorb errors the page-at-a-time
            // path would have surfaced.
            // Clamp the readahead window to the pages the run actually
            // has left: issuing past `end_page` would charge I/O for
            // pages no demand can ever claim (phantom "hits" past the
            // last run). Saturating keeps the clamp safe even if a
            // caller's `end_page` went stale.
            let len = self.window.min(self.end_page.saturating_sub(page)).max(1);
            let started = Instant::now();
            let mut pages = match self.pool.get_scan(self.file, page, len) {
                Ok(pages) => pages,
                Err(e) => {
                    // Forget the run so a retried demand degrades to a
                    // cold single-page read instead of re-batching.
                    self.last_demanded = None;
                    return Err(e);
                }
            };
            if let Some(m) = &self.metrics {
                m.batch_wall_ns.observe(started.elapsed().as_nanos() as u64);
            }
            if len > 1 {
                self.stats.issued += len - 1;
                if let Some(m) = &self.metrics {
                    m.issued.inc_by(len - 1);
                }
                self.outstanding = Some((page + 1, page + len));
            }
            return Ok(pages.swap_remove(0));
        }
        // Cold or non-sequential: one page, priced by the disk as-is.
        Ok(self
            .pool
            .get_scan(self.file, page, 1)?
            .pop()
            .expect("run of length 1"))
    }
}

impl Drop for Prefetcher<'_> {
    fn drop(&mut self) {
        self.flush_outstanding();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(pages: u64, pool_pages: usize) -> (DiskSim, FileId, usize) {
        let disk = DiskSim::new(32);
        let f = disk.create_file("docs").unwrap();
        for i in 0..pages {
            let mut page = vec![0u8; 32];
            page[0] = i as u8;
            disk.append_page(f, &page).unwrap();
        }
        disk.reset_stats();
        disk.reset_head();
        (disk, f, pool_pages)
    }

    #[test]
    fn second_read_hits_cache_without_io() {
        let (disk, f, cap) = setup(4, 4);
        let pool = BufferPool::new(&disk, cap);
        pool.get(f, 1).unwrap();
        pool.get(f, 1).unwrap();
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(disk.stats().total_reads(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (disk, f, _) = setup(4, 0);
        let pool = BufferPool::new(&disk, 2);
        pool.get(f, 0).unwrap();
        pool.get(f, 1).unwrap();
        pool.get(f, 0).unwrap(); // page 0 now most recent
        pool.get(f, 2).unwrap(); // evicts page 1
        assert!(pool.contains(f, 0));
        assert!(!pool.contains(f, 1));
        assert!(pool.contains(f, 2));
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn run_with_cached_interior_reads_only_gaps() {
        let (disk, f, _) = setup(6, 6);
        let pool = BufferPool::new(&disk, 6);
        pool.get(f, 2).unwrap();
        disk.reset_stats();
        // Run 0..6 with page 2 resident: reads runs [0,2) and [3,6).
        let pages = pool.get_run(f, 0, 6).unwrap();
        assert_eq!(pages.len(), 6);
        assert_eq!(disk.stats().total_reads(), 5);
        assert_eq!(pool.stats().hits, 1);
        // Data is correct and in order.
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(p[0], i as u8);
        }
    }

    #[test]
    fn consecutive_small_docs_share_page_cost() {
        // Two "documents" living in one page cost a single read: the
        // min{D, N} effect of section 5.1.
        let (disk, f, _) = setup(1, 2);
        let pool = BufferPool::new(&disk, 2);
        pool.get(f, 0).unwrap(); // doc A
        pool.get(f, 0).unwrap(); // doc B on the same page
        assert_eq!(disk.stats().total_reads(), 1);
    }

    #[test]
    fn clear_empties_pool() {
        let (disk, f, _) = setup(3, 3);
        let pool = BufferPool::new(&disk, 3);
        pool.get_run(f, 0, 3).unwrap();
        assert_eq!(pool.len(), 3);
        pool.clear();
        assert!(pool.is_empty());
        pool.get(f, 0).unwrap();
        assert_eq!(pool.stats().misses, 4);
    }

    #[test]
    fn capacity_one_pool_works() {
        let (disk, f, _) = setup(3, 1);
        let pool = BufferPool::new(&disk, 1);
        for round in 0..2 {
            for p in 0..3 {
                let page = pool.get(f, p).unwrap();
                assert_eq!(page[0], p as u8, "round {round}");
            }
        }
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 6);
        assert_eq!(pool.stats().evictions, 5);
    }

    #[test]
    fn attached_metrics_mirror_pool_events() {
        let registry = textjoin_obs::Registry::new();
        let (disk, f, _) = setup(4, 2);
        let pool = BufferPool::new(&disk, 2);
        pool.set_metrics(Some(PoolMetrics::register(&registry, "pool")));
        pool.get(f, 0).unwrap(); // miss
        pool.get(f, 0).unwrap(); // hit
        pool.get(f, 1).unwrap(); // miss
        pool.get(f, 2).unwrap(); // miss + eviction
        assert_eq!(registry.counter("buffer.hits", "pool").get(), 1);
        assert_eq!(registry.counter("buffer.misses", "pool").get(), 3);
        assert_eq!(registry.counter("buffer.evictions", "pool").get(), 1);
        assert_eq!(pool.stats().to_string(), "1 hits, 3 misses, 1 evictions");
    }

    #[test]
    fn attached_metrics_time_get_path() {
        let registry = textjoin_obs::Registry::new();
        let (disk, f, _) = setup(4, 2);
        let pool = BufferPool::new(&disk, 2);
        let metrics = PoolMetrics::register(&registry, "pool");
        pool.set_metrics(Some(metrics.clone()));
        pool.get(f, 0).unwrap(); // miss
        pool.get(f, 0).unwrap(); // hit
        pool.get_run(f, 0, 4).unwrap(); // mixed
        assert_eq!(metrics.get_wall_ns().count(), 3);
        assert!(metrics.get_wall_ns().max() > 0);
    }

    #[test]
    fn eviction_reuses_slots() {
        let (disk, f, _) = setup(8, 2);
        let pool = BufferPool::new(&disk, 2);
        for p in 0..8 {
            pool.get(f, p).unwrap();
        }
        // The slot arena must not grow beyond capacity.
        assert!(pool.state.lock().slots.len() <= 2);
    }

    #[test]
    fn sequential_scan_through_prefetcher_costs_d_pages_one_seek() {
        let (disk, f, _) = setup(20, 0);
        let mut pf = Prefetcher::new(&disk, f, 20);
        for p in 0..20 {
            let page = pf.get(p).unwrap();
            assert_eq!(page[0], p as u8);
        }
        let s = disk.stats();
        // Identical pricing to a page-at-a-time scan: every page read
        // exactly once, a single seek up front.
        assert_eq!(s.total_reads(), 20);
        assert_eq!(s.rand_reads, 1);
        // Page 0 cold, page 1 starts a batch; hits cover the rest.
        let ps = pf.stats();
        assert!(ps.issued > 0);
        assert!(ps.hits > 0);
        assert_eq!(ps.wasted, 0);
        assert_eq!(ps.issued, ps.hits, "every issued page was demanded");
    }

    #[test]
    fn prefetcher_reads_each_page_exactly_once() {
        let (disk, f, _) = setup(13, 0);
        let mut pf = Prefetcher::new(&disk, f, 13).with_window(4);
        for p in 0..13 {
            pf.get(p).unwrap();
        }
        assert_eq!(disk.stats().total_reads(), 13, "no page read twice");
    }

    #[test]
    fn repeated_demand_is_served_resident() {
        // A document ending mid-page makes its successor demand the same
        // page again; that must not cost I/O or disturb the readahead.
        let (disk, f, _) = setup(10, 0);
        let mut pf = Prefetcher::new(&disk, f, 10);
        pf.get(0).unwrap();
        pf.get(0).unwrap(); // straddling successor
        pf.get(1).unwrap();
        pf.get(1).unwrap();
        pf.get(2).unwrap();
        let s = disk.stats();
        assert_eq!(s.rand_reads, 1, "one cold seek only");
        assert!(s.total_reads() <= 10);
    }

    #[test]
    fn jump_flushes_outstanding_to_wasted() {
        let (disk, f, _) = setup(30, 0);
        let mut pf = Prefetcher::new(&disk, f, 30);
        pf.get(0).unwrap();
        pf.get(1).unwrap(); // batch issued: 2..9 outstanding
        pf.get(20).unwrap(); // jump: outstanding wasted
        let ps = pf.stats();
        assert_eq!(ps.issued, 7);
        assert_eq!(ps.wasted, 7);
        assert_eq!(ps.hits, 0);
    }

    #[test]
    fn drop_flushes_outstanding_to_metrics() {
        let registry = textjoin_obs::Registry::new();
        let (disk, f, _) = setup(30, 0);
        {
            let mut pf = Prefetcher::new(&disk, f, 30)
                .with_metrics(Some(PrefetchMetrics::register(&registry, "scan")));
            pf.get(0).unwrap();
            pf.get(1).unwrap(); // issues 7 ahead
            pf.get(2).unwrap(); // one hit
        }
        assert_eq!(registry.counter("prefetch.issued", "scan").get(), 7);
        assert_eq!(registry.counter("prefetch.hits", "scan").get(), 1);
        assert_eq!(registry.counter("prefetch.wasted", "scan").get(), 6);
    }

    #[test]
    fn issued_equals_hits_plus_wasted_after_drop() {
        let (disk, f, _) = setup(40, 0);
        let stats = {
            let mut pf = Prefetcher::new(&disk, f, 40).with_window(8);
            // A scan with a skip and an early stop.
            for p in 0..10 {
                pf.get(p).unwrap();
            }
            pf.get(25).unwrap();
            pf.get(26).unwrap();
            let s = pf.stats();
            drop(pf);
            s
        };
        // Can't read post-drop stats; re-derive: issued pages are either
        // hit or wasted (some wasted only at drop).
        assert!(stats.issued >= stats.hits);
    }

    #[test]
    fn early_stop_overshoot_lands_in_wasted_not_hits() {
        // A scan that stops mid-batch: the unconsumed readahead must be
        // accounted as wasted, never as hits.
        let (disk, f, _) = setup(10, 0);
        let stats = {
            let mut pf = Prefetcher::new(&disk, f, 10); // window 8
            for p in 0..4 {
                pf.get(p).unwrap();
            }
            // Page 0 cold; page 1 issued the 8-page batch [1, 9); pages
            // 2 and 3 hit. Dropping here strands [4, 9).
            drop_stats(pf)
        };
        assert_eq!(stats.issued, 7);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.wasted, 5);
        assert_eq!(
            stats.issued,
            stats.hits + stats.wasted,
            "every issued page is either demanded or wasted"
        );
    }

    #[test]
    fn clamped_tail_batch_never_issues_past_last_run() {
        // The last batch of a file shorter than the window must clamp:
        // issuing past the final run would charge phantom I/O and, once
        // demanded-never, misattribute the overshoot.
        let (disk, f, _) = setup(6, 0);
        let stats = {
            let mut pf = Prefetcher::new(&disk, f, 6); // window 8 > file
            pf.get(0).unwrap();
            pf.get(1).unwrap(); // batch clamps to [1, 6), issuing 4 ahead
            pf.get(2).unwrap(); // one hit, then stop early
            drop_stats(pf)
        };
        assert_eq!(disk.stats().total_reads(), 6, "no page past the run read");
        assert_eq!(stats.issued, 4, "window clamped to the 5 remaining pages");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.wasted, 3, "stranded tail pages are wasted");
        assert_eq!(stats.issued, stats.hits + stats.wasted);
    }

    /// Drops the prefetcher (flushing outstanding readahead to `wasted`)
    /// and returns the final counters.
    fn drop_stats(mut pf: Prefetcher<'_>) -> PrefetchStats {
        pf.flush_outstanding();
        pf.stats()
    }

    #[test]
    fn window_clamps_at_end_of_file() {
        let (disk, f, _) = setup(5, 0);
        let mut pf = Prefetcher::new(&disk, f, 5); // window 8 > file
        for p in 0..5 {
            pf.get(p).unwrap();
        }
        assert_eq!(disk.stats().total_reads(), 5, "readahead never over-runs");
        assert_eq!(pf.stats().wasted, 0);
    }

    #[test]
    fn scan_pricing_survives_head_disturbance() {
        // Another reader moves the head mid-scan: the next batch pays one
        // seek, not a window of random reads.
        let (disk, f, _) = setup(20, 0);
        let g = disk.create_file("other").unwrap();
        disk.append_page(g, &[0u8; 32]).unwrap();
        let mut pf = Prefetcher::new(&disk, f, 20).with_window(4);
        for p in 0..4 {
            pf.get(p).unwrap();
        }
        disk.read_page(f, 19).unwrap(); // same-file interloper breaks the head
        let before = disk.stats();
        for p in 4..12 {
            pf.get(p).unwrap();
        }
        let delta = disk.stats().since(&before);
        assert_eq!(delta.total_reads(), 8);
        assert_eq!(delta.rand_reads, 1, "one seek to resume, not a window");
    }
}
