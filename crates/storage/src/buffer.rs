//! A budgeted LRU page cache over the simulated disk.
//!
//! The buffer pool gives document-at-a-time readers the behaviour the paper
//! assumes in section 5.1: when documents are smaller than a page, fetching
//! them one at a time touches each *page* at most once while it stays
//! resident, so a random scan of collection 1 costs `min{D₁, N₁}` random
//! I/Os rather than `N₁·⌈S₁⌉`.
//!
//! Reads go through [`BufferPool::get_run`]: pages already resident are
//! served from memory (no I/O charged), and each maximal missing sub-run is
//! fetched from the [`DiskSim`] as one run, so contiguous access patterns
//! keep their sequential pricing. Eviction is strict LRU over unpinned
//! pages.

use crate::disk::{DiskSim, FileId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;
use textjoin_common::Result;
use textjoin_obs::{Counter, Histogram, Registry, LATENCY_BOUNDS_NS};

/// Cache hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Pages served from the pool without I/O.
    pub hits: u64,
    /// Pages that had to be read from disk.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl fmt::Display for BufferStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} evictions",
            self.hits, self.misses, self.evictions
        )
    }
}

/// Counter handles a [`BufferPool`] emits hit/miss/eviction events into
/// when attached via [`BufferPool::set_metrics`].
#[derive(Clone)]
pub struct PoolMetrics {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    get_wall_ns: Histogram,
}

impl PoolMetrics {
    /// Registers the pool counters and the get-path latency histogram
    /// under `label`.
    pub fn register(registry: &Registry, label: &str) -> Self {
        Self {
            hits: registry.counter("buffer.hits", label),
            misses: registry.counter("buffer.misses", label),
            evictions: registry.counter("buffer.evictions", label),
            get_wall_ns: registry.histogram("buffer.get_wall_ns", label, &LATENCY_BOUNDS_NS),
        }
    }

    /// Wall-clock latency distribution of [`BufferPool::get_run`] calls
    /// (hits and misses alike, so the hit/miss latency gap is visible).
    pub fn get_wall_ns(&self) -> &Histogram {
        &self.get_wall_ns
    }
}

type Key = (FileId, u64);

const NIL: usize = usize::MAX;

struct Slot {
    key: Key,
    data: Arc<[u8]>,
    prev: usize,
    next: usize,
}

/// Intrusive doubly-linked LRU over a slot arena. `head` is most recently
/// used, `tail` least recently used.
struct LruState {
    map: HashMap<Key, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    stats: BufferStats,
    /// Optional observability sink, updated under this same lock.
    metrics: Option<PoolMetrics>,
}

impl LruState {
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    fn insert(&mut self, key: Key, data: Arc<[u8]>) {
        debug_assert!(!self.map.contains_key(&key));
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "capacity > 0 guaranteed at construction");
            self.unlink(victim);
            let old_key = self.slots[victim].key;
            self.map.remove(&old_key);
            self.free.push(victim);
            self.stats.evictions += 1;
            if let Some(m) = &self.metrics {
                m.evictions.inc();
            }
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key,
                    data,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key,
                    data,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }
}

/// An LRU page cache of fixed capacity (in pages) over a [`DiskSim`].
pub struct BufferPool<'d> {
    disk: &'d DiskSim,
    state: Mutex<LruState>,
}

impl<'d> BufferPool<'d> {
    /// Creates a pool caching at most `capacity_pages` pages.
    ///
    /// # Panics
    /// Panics if `capacity_pages == 0`.
    pub fn new(disk: &'d DiskSim, capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "buffer pool needs at least one page");
        Self {
            disk,
            state: Mutex::new(LruState {
                map: HashMap::new(),
                slots: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                capacity: capacity_pages,
                stats: BufferStats::default(),
                metrics: None,
            }),
        }
    }

    /// The underlying disk.
    pub fn disk(&self) -> &'d DiskSim {
        self.disk
    }

    /// Cache capacity in pages.
    pub fn capacity(&self) -> usize {
        self.state.lock().capacity
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// Whether the pool holds no pages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> BufferStats {
        self.state.lock().stats
    }

    /// Attaches (or with `None`, detaches) an observability sink: cache
    /// hits, misses and evictions are mirrored into the registered
    /// counters under the pool's existing lock.
    pub fn set_metrics(&self, metrics: Option<PoolMetrics>) {
        self.state.lock().metrics = metrics;
    }

    /// Whether a page is resident (does not touch recency).
    pub fn contains(&self, file: FileId, page: u64) -> bool {
        self.state.lock().map.contains_key(&(file, page))
    }

    /// Drops every cached page (counters are kept).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.map.clear();
        st.slots.clear();
        st.free.clear();
        st.head = NIL;
        st.tail = NIL;
    }

    /// Reads one page through the cache.
    pub fn get(&self, file: FileId, page: u64) -> Result<Arc<[u8]>> {
        Ok(self.get_run(file, page, 1)?.pop().expect("run of length 1"))
    }

    /// Reads `len` consecutive pages through the cache. Resident pages cost
    /// nothing; each maximal missing sub-run is fetched from disk as one
    /// run so contiguity (and with it the sequential discount) is preserved.
    pub fn get_run(&self, file: FileId, start: u64, len: u64) -> Result<Vec<Arc<[u8]>>> {
        let started = Instant::now();
        let mut out: Vec<Option<Arc<[u8]>>> = vec![None; len as usize];

        // Pass 1: serve hits and find missing sub-runs.
        let mut missing_runs: Vec<(u64, u64)> = Vec::new(); // (start, len)
        let metrics;
        {
            let mut st = self.state.lock();
            let mut run_start: Option<u64> = None;
            let mut hits = 0u64;
            for i in 0..len {
                let page = start + i;
                if let Some(&idx) = st.map.get(&(file, page)) {
                    st.touch(idx);
                    hits += 1;
                    out[i as usize] = Some(Arc::clone(&st.slots[idx].data));
                    if let Some(rs) = run_start.take() {
                        missing_runs.push((rs, page - rs));
                    }
                } else if run_start.is_none() {
                    run_start = Some(page);
                }
            }
            if let Some(rs) = run_start {
                missing_runs.push((rs, start + len - rs));
            }
            st.stats.hits += hits;
            if let Some(m) = &st.metrics {
                if hits > 0 {
                    m.hits.inc_by(hits);
                }
            }
            metrics = st.metrics.clone();
        }

        // Pass 2: fetch missing runs (disk classifies them) and install.
        for (rs, rl) in missing_runs {
            let pages = self.disk.read_run(file, rs, rl)?;
            let mut st = self.state.lock();
            st.stats.misses += rl;
            if let Some(m) = &st.metrics {
                m.misses.inc_by(rl);
            }
            for (j, data) in pages.into_iter().enumerate() {
                let page = rs + j as u64;
                out[(page - start) as usize] = Some(Arc::clone(&data));
                if !st.map.contains_key(&(file, page)) {
                    st.insert((file, page), data);
                }
            }
        }

        if let Some(m) = &metrics {
            m.get_wall_ns.observe(started.elapsed().as_nanos() as u64);
        }
        Ok(out
            .into_iter()
            .map(|p| p.expect("all pages filled"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(pages: u64, pool_pages: usize) -> (DiskSim, FileId, usize) {
        let disk = DiskSim::new(32);
        let f = disk.create_file("docs").unwrap();
        for i in 0..pages {
            let mut page = vec![0u8; 32];
            page[0] = i as u8;
            disk.append_page(f, &page).unwrap();
        }
        disk.reset_stats();
        disk.reset_head();
        (disk, f, pool_pages)
    }

    #[test]
    fn second_read_hits_cache_without_io() {
        let (disk, f, cap) = setup(4, 4);
        let pool = BufferPool::new(&disk, cap);
        pool.get(f, 1).unwrap();
        pool.get(f, 1).unwrap();
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(disk.stats().total_reads(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (disk, f, _) = setup(4, 0);
        let pool = BufferPool::new(&disk, 2);
        pool.get(f, 0).unwrap();
        pool.get(f, 1).unwrap();
        pool.get(f, 0).unwrap(); // page 0 now most recent
        pool.get(f, 2).unwrap(); // evicts page 1
        assert!(pool.contains(f, 0));
        assert!(!pool.contains(f, 1));
        assert!(pool.contains(f, 2));
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn run_with_cached_interior_reads_only_gaps() {
        let (disk, f, _) = setup(6, 6);
        let pool = BufferPool::new(&disk, 6);
        pool.get(f, 2).unwrap();
        disk.reset_stats();
        // Run 0..6 with page 2 resident: reads runs [0,2) and [3,6).
        let pages = pool.get_run(f, 0, 6).unwrap();
        assert_eq!(pages.len(), 6);
        assert_eq!(disk.stats().total_reads(), 5);
        assert_eq!(pool.stats().hits, 1);
        // Data is correct and in order.
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(p[0], i as u8);
        }
    }

    #[test]
    fn consecutive_small_docs_share_page_cost() {
        // Two "documents" living in one page cost a single read: the
        // min{D, N} effect of section 5.1.
        let (disk, f, _) = setup(1, 2);
        let pool = BufferPool::new(&disk, 2);
        pool.get(f, 0).unwrap(); // doc A
        pool.get(f, 0).unwrap(); // doc B on the same page
        assert_eq!(disk.stats().total_reads(), 1);
    }

    #[test]
    fn clear_empties_pool() {
        let (disk, f, _) = setup(3, 3);
        let pool = BufferPool::new(&disk, 3);
        pool.get_run(f, 0, 3).unwrap();
        assert_eq!(pool.len(), 3);
        pool.clear();
        assert!(pool.is_empty());
        pool.get(f, 0).unwrap();
        assert_eq!(pool.stats().misses, 4);
    }

    #[test]
    fn capacity_one_pool_works() {
        let (disk, f, _) = setup(3, 1);
        let pool = BufferPool::new(&disk, 1);
        for round in 0..2 {
            for p in 0..3 {
                let page = pool.get(f, p).unwrap();
                assert_eq!(page[0], p as u8, "round {round}");
            }
        }
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 6);
        assert_eq!(pool.stats().evictions, 5);
    }

    #[test]
    fn attached_metrics_mirror_pool_events() {
        let registry = textjoin_obs::Registry::new();
        let (disk, f, _) = setup(4, 2);
        let pool = BufferPool::new(&disk, 2);
        pool.set_metrics(Some(PoolMetrics::register(&registry, "pool")));
        pool.get(f, 0).unwrap(); // miss
        pool.get(f, 0).unwrap(); // hit
        pool.get(f, 1).unwrap(); // miss
        pool.get(f, 2).unwrap(); // miss + eviction
        assert_eq!(registry.counter("buffer.hits", "pool").get(), 1);
        assert_eq!(registry.counter("buffer.misses", "pool").get(), 3);
        assert_eq!(registry.counter("buffer.evictions", "pool").get(), 1);
        assert_eq!(pool.stats().to_string(), "1 hits, 3 misses, 1 evictions");
    }

    #[test]
    fn attached_metrics_time_get_path() {
        let registry = textjoin_obs::Registry::new();
        let (disk, f, _) = setup(4, 2);
        let pool = BufferPool::new(&disk, 2);
        let metrics = PoolMetrics::register(&registry, "pool");
        pool.set_metrics(Some(metrics.clone()));
        pool.get(f, 0).unwrap(); // miss
        pool.get(f, 0).unwrap(); // hit
        pool.get_run(f, 0, 4).unwrap(); // mixed
        assert_eq!(metrics.get_wall_ns().count(), 3);
        assert!(metrics.get_wall_ns().max() > 0);
    }

    #[test]
    fn eviction_reuses_slots() {
        let (disk, f, _) = setup(8, 2);
        let pool = BufferPool::new(&disk, 2);
        for p in 0..8 {
            pool.get(f, p).unwrap();
        }
        // The slot arena must not grow beyond capacity.
        assert!(pool.state.lock().slots.len() <= 2);
    }
}
