//! Crash-safe incremental collections.
//!
//! The paper's storage model (section 3) is bulk-loaded and immutable; a
//! production join service sees live traffic that inserts and deletes
//! documents. This crate layers a crash-safe mutation path over the
//! immutable base structures:
//!
//! 1. every mutation is appended to a checksummed **write-ahead update
//!    log** ([`wal`]) before it is applied anywhere;
//! 2. mutations materialize into an in-memory **delta overlay**
//!    ([`textjoin_invfile::DeltaOverlay`]) — inserts in a tail, deletes as
//!    tombstones — optionally flushed to packed side files;
//! 3. a **background merge** folds base + overlay into a fresh generation
//!    of base files, killable at any page write: it builds complete
//!    structures under temporary names, publishes them by rename, and
//!    commits with a single-page append to the **manifest**
//!    ([`manifest`]); no live base page is ever overwritten;
//! 4. **recovery** ([`LiveCollection::recover`]) reads the manifest to
//!    find the last committed generation, reopens its files through the
//!    persisted catalog ([`catalog`]), replays the WAL (dropping a torn
//!    tail), and deletes any orphan files an interrupted merge left
//!    behind.
//!
//! The overlay's side-file pages and tombstone ratio are exported as
//! [`FragStats`] — the fragmentation term the cost model charges scans
//! with until the next merge.

pub mod catalog;
pub mod manifest;
pub mod wal;

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use textjoin_collection::{
    Collection, CollectionProfile, Document, DocumentStore, DocumentStoreBuilder,
};
use textjoin_common::{DocId, Error, FragStats, ICell, Result, TermId};
use textjoin_invfile::{BTreeFile, DeltaOverlay, FlushedDelta, InvertedFile};
use textjoin_storage::{DiskSim, FileId};
use wal::WalOp;

/// A mutable, crash-safe collection: an immutable base generation plus a
/// WAL-backed delta overlay, with a recoverable background merge.
pub struct LiveCollection {
    disk: Arc<DiskSim>,
    name: String,
    generation: u64,
    manifest: FileId,
    wal: FileId,
    base: Collection,
    base_inv: InvertedFile,
    overlay: DeltaOverlay,
    next_id: u32,
    flush_seq: u64,
}

/// A merge prepared but not yet committed: the complete next-generation
/// structures, built under temporary names, plus the WAL snapshot point.
/// Dropping it without committing abandons the merge (recovery or the next
/// prepare cleans up the temporary files).
pub struct PreparedMerge {
    new_generation: u64,
    wal_pages_at_snapshot: u64,
    base: Collection,
    inv: InvertedFile,
}

impl LiveCollection {
    fn gen_name(name: &str, generation: u64) -> String {
        format!("{name}.g{generation}")
    }

    /// Creates generation 0 from bulk documents: base files, catalog, an
    /// empty WAL, and the manifest committing the generation.
    pub fn create(
        disk: Arc<DiskSim>,
        name: &str,
        docs: impl IntoIterator<Item = Document>,
    ) -> Result<Self> {
        let gen_name = Self::gen_name(name, 0);
        let base = Collection::build(Arc::clone(&disk), &gen_name, docs)?;
        let base_inv = InvertedFile::build(Arc::clone(&disk), &gen_name, &base)?;
        catalog::write(&disk, &format!("{gen_name}.dir"), base.store(), &base_inv)?;
        let wal = disk.create_file(&format!("{gen_name}.wal"))?;
        let manifest = disk.create_file(&format!("{name}.manifest"))?;
        manifest::commit(&disk, manifest, 0)?;
        let next_id = base.store().num_docs() as u32;
        Ok(Self {
            disk,
            name: name.to_string(),
            generation: 0,
            manifest,
            wal,
            base,
            base_inv,
            overlay: DeltaOverlay::new(),
            next_id,
            flush_seq: 0,
        })
    }

    /// The user-visible collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The live generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The immutable base of the live generation.
    pub fn base(&self) -> &Collection {
        &self.base
    }

    /// The base inverted file of the live generation.
    pub fn base_inv(&self) -> &InvertedFile {
        &self.base_inv
    }

    /// The pending mutations over the base.
    pub fn overlay(&self) -> &DeltaOverlay {
        &self.overlay
    }

    /// The simulated disk.
    pub fn disk(&self) -> &Arc<DiskSim> {
        &self.disk
    }

    /// Number of live documents (base minus tombstones plus live inserts).
    pub fn num_live_docs(&self) -> u64 {
        let dead_in_base = self
            .overlay
            .deleted_ids()
            .iter()
            .filter(|&&id| self.base.store().contains(DocId::new(id)))
            .count() as u64;
        self.base.store().num_docs() - dead_in_base + self.overlay.live_ids().len() as u64
    }

    /// All live document numbers, ascending.
    pub fn live_ids(&self) -> Vec<DocId> {
        let mut ids: Vec<DocId> = self
            .base
            .store()
            .doc_ids()
            .into_iter()
            .filter(|&d| !self.overlay.is_deleted(d))
            .collect();
        ids.extend(self.overlay.live_ids());
        ids
    }

    /// The fragmentation the overlay has accumulated since the last merge.
    pub fn frag_stats(&self) -> FragStats {
        let stored = self.base.store().num_docs() + self.overlay.num_insertions();
        FragStats {
            doc_delta_pages: self.overlay.doc_pages(),
            inv_delta_pages: self.overlay.inv_pages(),
            tombstone_ratio: if stored == 0 {
                0.0
            } else {
                self.overlay.deleted_ids().len() as f64 / stored as f64
            },
        }
    }

    /// Inserts a document: WAL first, then the in-memory tail. The
    /// assigned document number is monotonic and never reused.
    pub fn insert(&mut self, doc: Document) -> Result<DocId> {
        let id = DocId::new(self.next_id);
        wal::append(
            &self.disk,
            self.wal,
            &WalOp::Insert {
                id,
                doc: doc.clone(),
            },
        )?;
        self.overlay.insert_tail(id, doc);
        self.next_id += 1;
        Ok(id)
    }

    /// Deletes a document, returning whether it was live. A miss writes
    /// nothing.
    pub fn delete(&mut self, id: DocId) -> Result<bool> {
        let in_base = self.base.store().contains(id);
        let in_delta = self.overlay.live_ids().binary_search(&id).is_ok();
        if (!in_base && !in_delta) || self.overlay.is_deleted(id) {
            return Ok(false);
        }
        wal::append(&self.disk, self.wal, &WalOp::Delete { id })?;
        self.overlay.delete(id);
        Ok(true)
    }

    /// Fetches one live document (base or delta), or `None`.
    pub fn doc(&self, id: DocId) -> Result<Option<Document>> {
        if self.overlay.is_deleted(id) {
            return Ok(None);
        }
        if let Some(doc) = self.overlay.doc(id)? {
            return Ok(Some(doc));
        }
        if self.base.store().contains(id) {
            return Ok(Some(self.base.store().read_doc_direct(id)?));
        }
        Ok(None)
    }

    /// Flushes the in-memory tail (together with any previously flushed
    /// inserts) into fresh packed side files, shrinking resident memory
    /// without touching the base. Crash-safe trivially: the WAL remains
    /// the recovery source and side files are rebuilt or discarded.
    pub fn flush(&mut self) -> Result<()> {
        if self.overlay.tail_docs().is_empty() {
            return Ok(());
        }
        let live = self.overlay.live_docs()?;
        let seq = self.flush_seq + 1;
        let side_name = format!("{}.f{seq}", Self::gen_name(&self.name, self.generation));
        let mut builder =
            DocumentStoreBuilder::new(Arc::clone(&self.disk), &format!("{side_name}.docs"))?;
        let mut postings: HashMap<TermId, Vec<ICell>> = HashMap::new();
        for (id, doc) in &live {
            builder.add_with_id(*id, doc)?;
            for cell in doc.cells() {
                postings
                    .entry(cell.term)
                    .or_default()
                    .push(ICell::new(*id, cell.weight));
            }
        }
        let store = builder.finish()?;
        let inv = InvertedFile::from_postings_with(
            Arc::clone(&self.disk),
            &side_name,
            postings,
            self.base_inv.codec(),
        )?;
        self.remove_side_files(self.flush_seq);
        self.overlay.set_flushed(FlushedDelta { store, inv });
        self.flush_seq = seq;
        Ok(())
    }

    fn remove_side_files(&self, seq: u64) {
        if seq == 0 {
            return;
        }
        let side_name = format!("{}.f{seq}", Self::gen_name(&self.name, self.generation));
        for suffix in ["docs", "inv", "btree"] {
            let _ = self.disk.remove_file(&format!("{side_name}.{suffix}"));
        }
    }

    /// Phase 1 of a merge: streams every live document (base minus
    /// tombstones, plus delta inserts, original ids preserved) into
    /// complete next-generation structures under `.tmp`-suffixed names.
    /// Killable at any page write — on error the temporaries are garbage
    /// that the next prepare or a recovery sweeps up; the live generation
    /// is untouched. Takes `&self`: reads may proceed concurrently.
    pub fn prepare_merge(&self) -> Result<PreparedMerge> {
        let new_generation = self.generation + 1;
        let tmp_name = format!("{}.tmp", Self::gen_name(&self.name, new_generation));
        // Sweep temporaries a previously killed merge may have left.
        for suffix in ["docs", "inv", "btree", "dir"] {
            let _ = self.disk.remove_file(&format!("{tmp_name}.{suffix}"));
        }
        let wal_pages_at_snapshot = self.disk.num_pages(self.wal);

        let mut builder =
            DocumentStoreBuilder::new(Arc::clone(&self.disk), &format!("{tmp_name}.docs"))?;
        let mut profiler = CollectionProfile::builder();
        let mut postings: HashMap<TermId, Vec<ICell>> = HashMap::new();
        let add = |builder: &mut DocumentStoreBuilder,
                   postings: &mut HashMap<TermId, Vec<ICell>>,
                   profiler: &mut textjoin_collection::profile::ProfileBuilder,
                   id: DocId,
                   doc: &Document|
         -> Result<()> {
            builder.add_with_id(id, doc)?;
            profiler.observe_at(id, doc);
            for cell in doc.cells() {
                postings
                    .entry(cell.term)
                    .or_default()
                    .push(ICell::new(id, cell.weight));
            }
            Ok(())
        };
        for item in self.base.store().scan() {
            let (id, doc) = item?;
            if !self.overlay.is_deleted(id) {
                add(&mut builder, &mut postings, &mut profiler, id, &doc)?;
            }
        }
        for (id, doc) in self.overlay.live_docs()? {
            add(&mut builder, &mut postings, &mut profiler, id, &doc)?;
        }
        let store = builder.finish()?;
        let inv = InvertedFile::from_postings_with(
            Arc::clone(&self.disk),
            &tmp_name,
            postings,
            self.base_inv.codec(),
        )?;
        catalog::write(&self.disk, &format!("{tmp_name}.dir"), &store, &inv)?;
        let base = Collection::from_store(
            &Self::gen_name(&self.name, new_generation),
            store,
            profiler.finish(),
        );
        Ok(PreparedMerge {
            new_generation,
            wal_pages_at_snapshot,
            base,
            inv,
        })
    }

    /// Phase 2 of a merge: publishes the prepared generation. Renames the
    /// temporaries to their final names, carries WAL records appended
    /// after the snapshot into the new generation's WAL, commits with one
    /// manifest append (the atomic point), then removes the old
    /// generation's files. A crash before the manifest append leaves the
    /// old generation live and complete; after it, the new one.
    pub fn commit_merge(&mut self, prepared: PreparedMerge) -> Result<()> {
        let old_gen_name = Self::gen_name(&self.name, self.generation);
        let new_gen_name = Self::gen_name(&self.name, prepared.new_generation);
        let tmp_name = format!("{new_gen_name}.tmp");
        for suffix in ["docs", "inv", "btree", "dir"] {
            self.disk.rename_file(
                &format!("{tmp_name}.{suffix}"),
                &format!("{new_gen_name}.{suffix}"),
            )?;
        }
        // Carry forward mutations that arrived after the snapshot: copy
        // their raw WAL pages (records are page-aligned) to the new log.
        let new_wal = self.disk.create_file(&format!("{new_gen_name}.wal"))?;
        let old_wal_pages = self.disk.num_pages(self.wal);
        for page in prepared.wal_pages_at_snapshot..old_wal_pages {
            let data = self.disk.read_page(self.wal, page)?;
            self.disk.append_page(new_wal, &data)?;
        }
        manifest::commit(&self.disk, self.manifest, prepared.new_generation)?;

        // Committed: everything below is cleanup and in-memory swap.
        let old_flush_seq = self.flush_seq;
        for suffix in ["docs", "inv", "btree", "dir", "wal"] {
            let _ = self.disk.remove_file(&format!("{old_gen_name}.{suffix}"));
        }
        self.remove_side_files(old_flush_seq);

        let replayed = wal::replay(&self.disk, new_wal);
        let mut overlay = DeltaOverlay::new();
        for op in replayed.ops {
            match op {
                WalOp::Insert { id, doc } => overlay.insert_tail(id, doc),
                WalOp::Delete { id } => overlay.delete(id),
            }
        }
        self.generation = prepared.new_generation;
        self.wal = new_wal;
        self.base = prepared.base;
        self.base_inv = prepared.inv;
        self.overlay = overlay;
        self.flush_seq = 0;
        Ok(())
    }

    /// Prepares and commits a merge in one call.
    pub fn merge(&mut self) -> Result<()> {
        let prepared = self.prepare_merge()?;
        self.commit_merge(prepared)
    }

    /// Reopens a live collection from disk alone — the restart path. Reads
    /// the manifest for the last committed generation, reopens its files
    /// through the persisted catalog, rebuilds the profile with one base
    /// scan, replays the WAL into a fresh overlay (dropping any torn
    /// tail), and removes every file a killed merge or flush left behind.
    pub fn recover(disk: Arc<DiskSim>, name: &str) -> Result<Self> {
        let manifest = disk
            .file_by_name(&format!("{name}.manifest"))
            .ok_or_else(|| Error::NotFound(format!("manifest of collection '{name}'")))?;
        let generation = manifest::live_generation(&disk, manifest)?;
        let gen_name = Self::gen_name(name, generation);

        let open = |suffix: &str| -> Result<FileId> {
            disk.file_by_name(&format!("{gen_name}.{suffix}"))
                .ok_or_else(|| Error::NotFound(format!("{gen_name}.{suffix}")))
        };
        let cat = catalog::read(&disk, open("dir")?)?;
        let store = DocumentStore::from_parts(
            Arc::clone(&disk),
            open("docs")?,
            cat.doc_directory,
            cat.doc_ids,
            cat.doc_total_bytes,
        );
        let (root, height, num_terms, first_leaf, num_leaf_pages) = cat.btree;
        let btree = BTreeFile::from_parts(
            Arc::clone(&disk),
            open("btree")?,
            root,
            height,
            num_terms,
            first_leaf,
            num_leaf_pages,
        );
        let inv = InvertedFile::from_parts(
            Arc::clone(&disk),
            open("inv")?,
            cat.inv_directory,
            btree,
            cat.inv_total_bytes,
            cat.codec,
        );
        // The profile is not persisted: one sequential base scan rebuilds
        // it (recovery cost, not query cost).
        let mut profiler = CollectionProfile::builder();
        for item in store.scan() {
            let (id, doc) = item?;
            profiler.observe_at(id, &doc);
        }
        let mut max_id = store.doc_ids().last().map(|d| d.raw());
        let base = Collection::from_store(&gen_name, store, profiler.finish());

        let wal = match disk.file_by_name(&format!("{gen_name}.wal")) {
            Some(f) => f,
            None => disk.create_file(&format!("{gen_name}.wal"))?,
        };
        let mut overlay = DeltaOverlay::new();
        for op in wal::replay(&disk, wal).ops {
            match op {
                WalOp::Insert { id, doc } => {
                    max_id = Some(max_id.map_or(id.raw(), |m| m.max(id.raw())));
                    overlay.insert_tail(id, doc);
                }
                WalOp::Delete { id } => overlay.delete(id),
            }
        }
        let next_id = max_id.map_or(0, |m| m + 1);

        // Sweep orphans: any generation-qualified file that is not part of
        // the live generation (killed merges, stale flush side files).
        let keep: Vec<String> = ["docs", "inv", "btree", "dir", "wal"]
            .iter()
            .map(|s| format!("{gen_name}.{s}"))
            .collect();
        let prefix = format!("{name}.g");
        for file in disk.file_names() {
            if file.starts_with(&prefix) && !keep.contains(&file) {
                let _ = disk.remove_file(&file);
            }
        }

        Ok(Self {
            disk,
            name: name.to_string(),
            generation,
            manifest,
            wal,
            base,
            base_inv: inv,
            overlay,
            next_id,
            flush_seq: 0,
        })
    }
}

/// Runs a merge against a shared live collection on a background thread:
/// the slow prepare phase holds only a read lock (queries and even
/// mutations proceed — the WAL snapshot point makes late mutations carry
/// forward), and the fast commit takes the write lock briefly.
pub fn merge_in_background(
    live: Arc<RwLock<LiveCollection>>,
) -> std::thread::JoinHandle<Result<()>> {
    std::thread::spawn(move || {
        let prepared = live.read().prepare_merge()?;
        live.write().commit_merge(prepared)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use textjoin_common::TermId;

    fn doc(terms: &[(u32, u16)]) -> Document {
        Document::from_term_counts(terms.iter().map(|&(t, w)| (TermId::new(t), w as u32)))
    }

    fn seed_docs(n: u32) -> Vec<Document> {
        (0..n)
            .map(|i| doc(&[(i % 7, 1 + (i % 3) as u16), (7 + i % 5, 2)]))
            .collect()
    }

    fn disk() -> Arc<DiskSim> {
        Arc::new(DiskSim::new(64))
    }

    /// The reference: all live documents, rebuilt from scratch.
    fn live_contents(lc: &LiveCollection) -> Vec<(DocId, Document)> {
        let mut out = Vec::new();
        for item in lc.base().store().scan() {
            let (id, d) = item.unwrap();
            if !lc.overlay().is_deleted(id) {
                out.push((id, d));
            }
        }
        out.extend(lc.overlay().live_docs().unwrap());
        out
    }

    #[test]
    fn insert_delete_and_lookup() {
        let mut lc = LiveCollection::create(disk(), "c", seed_docs(5)).unwrap();
        assert_eq!(lc.num_live_docs(), 5);
        let id = lc.insert(doc(&[(50, 9)])).unwrap();
        assert_eq!(id, DocId::new(5));
        assert_eq!(lc.doc(id).unwrap(), Some(doc(&[(50, 9)])));
        assert!(lc.delete(DocId::new(2)).unwrap());
        assert!(!lc.delete(DocId::new(2)).unwrap(), "double delete misses");
        assert!(!lc.delete(DocId::new(77)).unwrap(), "unknown id misses");
        assert_eq!(lc.num_live_docs(), 5);
        assert_eq!(lc.doc(DocId::new(2)).unwrap(), None);
        let ids = lc.live_ids();
        assert!(!ids.contains(&DocId::new(2)) && ids.contains(&DocId::new(5)));
    }

    #[test]
    fn recovery_replays_the_wal() {
        let d = disk();
        let mut lc = LiveCollection::create(Arc::clone(&d), "c", seed_docs(4)).unwrap();
        lc.insert(doc(&[(9, 9)])).unwrap();
        lc.delete(DocId::new(1)).unwrap();
        let before = live_contents(&lc);
        drop(lc);
        let lc = LiveCollection::recover(d, "c").unwrap();
        assert_eq!(live_contents(&lc), before);
        assert_eq!(lc.num_live_docs(), 4);
        assert_eq!(lc.generation(), 0);
    }

    #[test]
    fn merge_folds_overlay_into_next_generation() {
        let d = disk();
        let mut lc = LiveCollection::create(Arc::clone(&d), "c", seed_docs(6)).unwrap();
        lc.insert(doc(&[(11, 3)])).unwrap();
        lc.delete(DocId::new(0)).unwrap();
        lc.flush().unwrap();
        lc.insert(doc(&[(12, 4)])).unwrap();
        let before = live_contents(&lc);
        lc.merge().unwrap();
        assert_eq!(lc.generation(), 1);
        assert!(lc.overlay().is_empty(), "merge absorbs the whole overlay");
        assert!(lc.frag_stats().is_pristine());
        assert_eq!(live_contents(&lc), before);
        // Old generation files are gone; ids preserved across the merge.
        assert!(d.file_by_name("c.g0.docs").is_none());
        assert_eq!(lc.base().store().doc_ids().first(), Some(&DocId::new(1)));
        // Mutations keep working after the merge and survive recovery.
        let id = lc.insert(doc(&[(13, 1)])).unwrap();
        assert_eq!(id, DocId::new(8));
        let after = live_contents(&lc);
        drop(lc);
        let lc = LiveCollection::recover(d, "c").unwrap();
        assert_eq!(lc.generation(), 1);
        assert_eq!(live_contents(&lc), after);
    }

    #[test]
    fn frag_stats_track_overlay_decay() {
        let d = disk();
        let mut lc = LiveCollection::create(Arc::clone(&d), "c", seed_docs(10)).unwrap();
        assert!(lc.frag_stats().is_pristine());
        lc.delete(DocId::new(3)).unwrap();
        let f = lc.frag_stats();
        assert!(f.tombstone_ratio > 0.0 && f.doc_delta_pages == 0);
        lc.insert(doc(&[(20, 1)])).unwrap();
        lc.flush().unwrap();
        let f = lc.frag_stats();
        assert!(f.doc_delta_pages > 0 && f.inv_delta_pages > 0);
        lc.merge().unwrap();
        assert!(lc.frag_stats().is_pristine());
    }

    #[test]
    fn crash_at_every_merge_write_recovers_to_consistent_state() {
        // The acceptance property, exhaustively at unit scale: kill the
        // merge at the k-th page write for every k, restart, and check the
        // recovered contents equal either the pre-merge or post-merge
        // state (the manifest append decides which) — never a mix.
        let reference = {
            let d = disk();
            let mut lc = LiveCollection::create(Arc::clone(&d), "c", seed_docs(6)).unwrap();
            lc.insert(doc(&[(11, 3)])).unwrap();
            lc.delete(DocId::new(2)).unwrap();
            live_contents(&lc)
        };
        let mut killed_some = false;
        let mut survived_some = false;
        for k in 0.. {
            let d = disk();
            let mut lc = LiveCollection::create(Arc::clone(&d), "c", seed_docs(6)).unwrap();
            lc.insert(doc(&[(11, 3)])).unwrap();
            lc.delete(DocId::new(2)).unwrap();
            d.set_write_crash_after(k);
            let merged = lc.merge();
            d.clear_write_crash();
            if merged.is_ok() {
                survived_some = true;
            } else {
                killed_some = true;
            }
            drop(lc);
            let lc = LiveCollection::recover(Arc::clone(&d), "c").unwrap();
            assert_eq!(live_contents(&lc), reference, "crash after {k} writes");
            // Whatever generation survived, it must merge cleanly now.
            let mut lc = lc;
            lc.merge().unwrap();
            assert_eq!(live_contents(&lc), reference);
            if merged.is_ok() {
                break;
            }
        }
        assert!(killed_some && survived_some);
    }

    #[test]
    fn background_merge_with_concurrent_mutations_carries_them_forward() {
        let d = disk();
        let mut lc = LiveCollection::create(Arc::clone(&d), "c", seed_docs(8)).unwrap();
        lc.insert(doc(&[(30, 1)])).unwrap();
        let live = Arc::new(RwLock::new(lc));
        let handle = merge_in_background(Arc::clone(&live));
        // Mutations racing the merge: the RwLock admits them during the
        // prepare phase; whichever side of the snapshot they land on, the
        // carry-forward keeps them.
        {
            let mut guard = live.write();
            guard.insert(doc(&[(31, 2)])).unwrap();
            guard.delete(DocId::new(1)).unwrap();
        }
        handle.join().unwrap().unwrap();
        let guard = live.read();
        assert_eq!(guard.generation(), 1);
        let contents = live_contents(&guard);
        let ids: Vec<u32> = contents.iter().map(|(d, _)| d.raw()).collect();
        assert!(!ids.contains(&1), "racing delete survived the merge");
        assert!(ids.contains(&9), "racing insert survived the merge");
        assert_eq!(guard.num_live_docs(), 9);
    }
}
