//! The write-ahead update log.
//!
//! Every mutation of a live collection is appended here *before* it is
//! applied to the in-memory delta, so a crash at any moment loses at most
//! the record being appended. The log is a sequence of records, each
//! starting on a fresh page (a record is the atom of recovery; page
//! alignment means a torn record never corrupts its predecessor):
//!
//! ```text
//! record  : [u32 body len LE][u8 kind][body], zero-padded to page multiple
//! kind 1  : insert — body = [u32 doc id][Document::encode bytes]
//! kind 2  : delete — body = [u32 doc id]
//! ```
//!
//! Integrity comes from the disk's page-header CRC32 (PR 2): a torn or
//! bit-flipped page fails verification on read, and replay stops at the
//! first unreadable or unparsable page, dropping only the torn tail — the
//! same discipline the observability report store uses (PR 6).

use std::sync::Arc;
use textjoin_collection::Document;
use textjoin_common::{DocId, Error, Result};
use textjoin_storage::{DiskSim, FileId};

const HEADER_BYTES: usize = 5;
const KIND_INSERT: u8 = 1;
const KIND_DELETE: u8 = 2;

/// One logged mutation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// A document insert under an explicit document number.
    Insert {
        /// The assigned document number.
        id: DocId,
        /// The inserted document.
        doc: Document,
    },
    /// A document delete (tombstone).
    Delete {
        /// The tombstoned document number.
        id: DocId,
    },
}

impl WalOp {
    fn encode(&self) -> Vec<u8> {
        let (kind, body) = match self {
            WalOp::Insert { id, doc } => {
                let mut b = id.raw().to_le_bytes().to_vec();
                b.extend_from_slice(&doc.encode());
                (KIND_INSERT, b)
            }
            WalOp::Delete { id } => (KIND_DELETE, id.raw().to_le_bytes().to_vec()),
        };
        let mut out = Vec::with_capacity(HEADER_BYTES + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.push(kind);
        out.extend_from_slice(&body);
        out
    }

    fn decode(kind: u8, body: &[u8]) -> Result<WalOp> {
        let id = |b: &[u8]| -> Result<DocId> {
            if b.len() < 4 {
                return Err(Error::Corrupt("WAL record body too short".into()));
            }
            Ok(DocId::new(u32::from_le_bytes([b[0], b[1], b[2], b[3]])))
        };
        match kind {
            KIND_INSERT => Ok(WalOp::Insert {
                id: id(body)?,
                doc: Document::decode(&body[4..])?,
            }),
            KIND_DELETE => {
                if body.len() != 4 {
                    return Err(Error::Corrupt(
                        "WAL delete record has trailing bytes".into(),
                    ));
                }
                Ok(WalOp::Delete { id: id(body)? })
            }
            k => Err(Error::Corrupt(format!("unknown WAL record kind {k}"))),
        }
    }
}

/// Appends one record to the log, starting on a fresh page. A crash
/// mid-append leaves a torn tail that [`replay`] will drop.
pub fn append(disk: &Arc<DiskSim>, wal: FileId, op: &WalOp) -> Result<()> {
    let bytes = op.encode();
    let page_size = disk.page_size();
    for chunk in bytes.chunks(page_size) {
        let mut page = chunk.to_vec();
        page.resize(page_size, 0);
        disk.append_page(wal, &page)?;
    }
    Ok(())
}

/// The result of replaying a log.
pub struct Replay {
    /// The decoded records, in append order.
    pub ops: Vec<WalOp>,
    /// Pages consumed by the decoded records (the carry-forward offset a
    /// merge uses to find records appended after its snapshot).
    pub pages: u64,
}

/// Replays the log from page `start`, stopping at the first torn,
/// corrupted or unparsable page and dropping everything from there on.
/// Never fails: a damaged log yields the longest clean prefix.
pub fn replay_from(disk: &Arc<DiskSim>, wal: FileId, start: u64) -> Replay {
    let page_size = disk.page_size();
    let total = disk.num_pages(wal);
    let mut ops = Vec::new();
    let mut page = start;
    while page < total {
        let Ok(first) = disk.read_page(wal, page) else {
            break;
        };
        let len = u32::from_le_bytes([first[0], first[1], first[2], first[3]]) as usize;
        let kind = first[4];
        if kind == 0 {
            break; // zero page — nothing was ever written here
        }
        let record_pages = (HEADER_BYTES + len).div_ceil(page_size) as u64;
        if page + record_pages > total {
            break; // record tail never made it to disk
        }
        let mut bytes = Vec::with_capacity(HEADER_BYTES + len);
        bytes.extend_from_slice(&first);
        let mut torn = false;
        for p in page + 1..page + record_pages {
            match disk.read_page(wal, p) {
                Ok(data) => bytes.extend_from_slice(&data),
                Err(_) => {
                    torn = true;
                    break;
                }
            }
        }
        if torn {
            break;
        }
        match WalOp::decode(kind, &bytes[HEADER_BYTES..HEADER_BYTES + len]) {
            Ok(op) => ops.push(op),
            Err(_) => break,
        }
        page += record_pages;
    }
    Replay { ops, pages: page }
}

/// Replays the whole log.
pub fn replay(disk: &Arc<DiskSim>, wal: FileId) -> Replay {
    replay_from(disk, wal, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use textjoin_common::TermId;
    use textjoin_storage::{FaultKind, FaultPlan};

    fn doc(terms: &[(u32, u16)]) -> Document {
        Document::from_term_counts(terms.iter().map(|&(t, w)| (TermId::new(t), w as u32)))
    }

    #[test]
    fn round_trips_records_across_page_boundaries() {
        let disk = Arc::new(DiskSim::new(16)); // records straddle pages
        let wal = disk.create_file("w.wal").unwrap();
        let ops = vec![
            WalOp::Insert {
                id: DocId::new(7),
                doc: doc(&[(1, 2), (2, 3), (9, 1)]),
            },
            WalOp::Delete { id: DocId::new(3) },
            WalOp::Insert {
                id: DocId::new(8),
                doc: doc(&[(4, 1)]),
            },
        ];
        for op in &ops {
            append(&disk, wal, op).unwrap();
        }
        let replayed = replay(&disk, wal);
        assert_eq!(replayed.ops, ops);
        assert_eq!(replayed.pages, disk.num_pages(wal));
    }

    #[test]
    fn torn_tail_is_dropped_but_prefix_survives() {
        let disk = Arc::new(DiskSim::new(16));
        let wal = disk.create_file("w.wal").unwrap();
        append(&disk, wal, &WalOp::Delete { id: DocId::new(1) }).unwrap();
        // Crash mid-append of a multi-page record: only its first page
        // lands on disk.
        let big = WalOp::Insert {
            id: DocId::new(2),
            doc: doc(&[(1, 1), (2, 1), (3, 1), (4, 1)]),
        };
        disk.set_write_crash_after(1);
        assert!(append(&disk, wal, &big).is_err());
        disk.clear_write_crash();
        let replayed = replay(&disk, wal);
        assert_eq!(replayed.ops, vec![WalOp::Delete { id: DocId::new(1) }]);
        assert_eq!(replayed.pages, 1);
    }

    #[test]
    fn corrupted_page_stops_replay_without_panicking() {
        let disk = Arc::new(DiskSim::new(32));
        let wal = disk.create_file("w.wal").unwrap();
        for i in 0..4u32 {
            append(&disk, wal, &WalOp::Delete { id: DocId::new(i) }).unwrap();
        }
        // Flip a bit in the third record's page on its next read.
        disk.set_fault_plan(FaultPlan::new().with_fault(
            wal,
            2,
            0,
            FaultKind::BitFlip { bit_offset: 11 },
        ));
        let replayed = replay(&disk, wal);
        assert_eq!(
            replayed.ops,
            vec![
                WalOp::Delete { id: DocId::new(0) },
                WalOp::Delete { id: DocId::new(1) },
            ],
            "replay keeps the clean prefix, drops from the flipped page on"
        );
    }
}
