//! The persisted per-generation catalog (`<name>.g<G>.dir`).
//!
//! The in-memory directories of the base structures (document byte spans,
//! inverted-file entry spans, B+tree scalars) are rebuilt from this file
//! on recovery. It is written once, before the generation is committed to
//! the manifest, and never modified — so recovery either sees a complete
//! catalog (the generation is live) or never looks at it (the generation
//! was not committed).
//!
//! Layout: a `[u64 body len]` prefix, then the body, zero-padded across
//! pages. Body (all integers LE):
//!
//! ```text
//! [u8 version = 1][u8 codec]
//! [u64 doc total bytes][u64 n docs][u8 sparse]
//!   n × { u64 offset, u64 len } (+ u32 id when sparse)
//! [u64 inv total bytes][u64 n entries]
//!   n × { u32 term, u64 offset, u64 len, u32 doc freq }
//! [u32 root][u32 height][u64 n terms][u32 first leaf][u64 leaf pages]
//! ```

use std::sync::Arc;
use textjoin_common::{Error, Result, TermId};
use textjoin_invfile::{EntryMeta, InvertedFile, PostingCodec};
use textjoin_storage::{ByteSpan, DiskSim, FileId};

const VERSION: u8 = 1;

/// The parsed catalog of one generation.
pub struct Catalog {
    /// Posting codec of the inverted file.
    pub codec: PostingCodec,
    /// Logical bytes of the document store.
    pub doc_total_bytes: u64,
    /// Byte span of each document, in storage order.
    pub doc_directory: Vec<ByteSpan>,
    /// Sparse document numbers (None = dense `0..n`).
    pub doc_ids: Option<Vec<u32>>,
    /// Logical bytes of the inverted file.
    pub inv_total_bytes: u64,
    /// Entry directory of the inverted file, in term order.
    pub inv_directory: Vec<EntryMeta>,
    /// B+tree scalars: root, height, num terms, first leaf, leaf pages.
    pub btree: (u32, u32, u64, u32, u64),
}

fn codec_code(codec: PostingCodec) -> u8 {
    match codec {
        PostingCodec::Fixed5 => 0,
        PostingCodec::VarintGap => 1,
    }
}

fn codec_from(code: u8) -> Result<PostingCodec> {
    match code {
        0 => Ok(PostingCodec::Fixed5),
        1 => Ok(PostingCodec::VarintGap),
        c => Err(Error::Corrupt(format!("unknown posting codec {c}"))),
    }
}

/// Serializes and writes the catalog for a freshly built generation.
pub fn write(
    disk: &Arc<DiskSim>,
    name: &str,
    store: &textjoin_collection::DocumentStore,
    inv: &InvertedFile,
) -> Result<FileId> {
    let store_ids = store.sparse_ids();
    let mut body = vec![VERSION, codec_code(inv.codec())];
    body.extend_from_slice(&store.total_bytes().to_le_bytes());
    body.extend_from_slice(&store.num_docs().to_le_bytes());
    body.push(u8::from(store_ids.is_some()));
    for (i, span) in store.directory().iter().enumerate() {
        body.extend_from_slice(&span.offset.to_le_bytes());
        body.extend_from_slice(&span.len.to_le_bytes());
        if let Some(ids) = store_ids {
            body.extend_from_slice(&ids[i].to_le_bytes());
        }
    }
    body.extend_from_slice(&inv.total_bytes().to_le_bytes());
    body.extend_from_slice(&inv.num_entries().to_le_bytes());
    for meta in inv.directory() {
        body.extend_from_slice(&meta.term.raw().to_le_bytes());
        body.extend_from_slice(&meta.span.offset.to_le_bytes());
        body.extend_from_slice(&meta.span.len.to_le_bytes());
        body.extend_from_slice(&meta.doc_freq.to_le_bytes());
    }
    let bt = inv.btree();
    body.extend_from_slice(&bt.root().to_le_bytes());
    body.extend_from_slice(&bt.height().to_le_bytes());
    body.extend_from_slice(&bt.num_terms().to_le_bytes());
    body.extend_from_slice(&bt.first_leaf().to_le_bytes());
    body.extend_from_slice(&bt.num_leaf_pages().to_le_bytes());

    let file = disk.create_file(name)?;
    let mut bytes = (body.len() as u64).to_le_bytes().to_vec();
    bytes.extend_from_slice(&body);
    let page_size = disk.page_size();
    for chunk in bytes.chunks(page_size) {
        let mut page = chunk.to_vec();
        page.resize(page_size, 0);
        disk.append_page(file, &page)?;
    }
    Ok(file)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.bytes.len() {
            return Err(Error::Corrupt("catalog truncated".into()));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn u64(&mut self) -> Result<u64> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }
}

/// Reads the catalog back — one sequential scan of the file.
pub fn read(disk: &Arc<DiskSim>, file: FileId) -> Result<Catalog> {
    let pages = disk.read_scan(file, 0, disk.num_pages(file))?;
    let mut bytes = Vec::new();
    for p in &pages {
        bytes.extend_from_slice(p);
    }
    if bytes.len() < 8 {
        return Err(Error::Corrupt("catalog file too short".into()));
    }
    let body_len = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
    if bytes.len() < 8 + body_len {
        return Err(Error::Corrupt("catalog body truncated".into()));
    }
    let mut c = Cursor {
        bytes: &bytes[8..8 + body_len],
        at: 0,
    };
    if c.u8()? != VERSION {
        return Err(Error::Corrupt("unknown catalog version".into()));
    }
    let codec = codec_from(c.u8()?)?;
    let doc_total_bytes = c.u64()?;
    let n_docs = c.u64()? as usize;
    let sparse = c.u8()? != 0;
    let mut doc_directory = Vec::with_capacity(n_docs);
    let mut doc_ids = sparse.then(|| Vec::with_capacity(n_docs));
    for _ in 0..n_docs {
        let offset = c.u64()?;
        let len = c.u64()?;
        doc_directory.push(ByteSpan::new(offset, len));
        if let Some(ids) = &mut doc_ids {
            ids.push(c.u32()?);
        }
    }
    let inv_total_bytes = c.u64()?;
    let n_entries = c.u64()? as usize;
    let mut inv_directory = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let term = TermId::new(c.u32()?);
        let offset = c.u64()?;
        let len = c.u64()?;
        let doc_freq = c.u32()?;
        inv_directory.push(EntryMeta {
            term,
            span: ByteSpan::new(offset, len),
            doc_freq,
        });
    }
    let btree = (c.u32()?, c.u32()?, c.u64()?, c.u32()?, c.u64()?);
    Ok(Catalog {
        codec,
        doc_total_bytes,
        doc_directory,
        doc_ids,
        inv_total_bytes,
        inv_directory,
        btree,
    })
}
