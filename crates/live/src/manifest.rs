//! The merge manifest: the atomic commit point of a generation.
//!
//! One append-only file per live collection, one record per page:
//!
//! ```text
//! [u8 version = 1][u64 generation LE], zero-padded to a page
//! ```
//!
//! The *last parseable* record names the live generation. Appending a
//! record is a single page write — the disk's unit of atomicity — so a
//! merge commits by appending and a crash anywhere before that append
//! leaves the previous generation live. A torn or flipped record at the
//! tail fails CRC verification on read and is skipped, falling back to the
//! previous record: exactly the torn-tail-drop discipline of the WAL.

use std::sync::Arc;
use textjoin_common::{Error, Result};
use textjoin_storage::{DiskSim, FileId};

const VERSION: u8 = 1;

/// Appends a generation record — the commit point.
pub fn commit(disk: &Arc<DiskSim>, manifest: FileId, generation: u64) -> Result<()> {
    let mut page = vec![0u8; disk.page_size()];
    page[0] = VERSION;
    page[1..9].copy_from_slice(&generation.to_le_bytes());
    disk.append_page(manifest, &page)?;
    Ok(())
}

/// The live generation: the last readable, parseable record. Unreadable
/// pages (torn commit, bit flip) are skipped — an interrupted commit
/// falls back to the previous generation.
pub fn live_generation(disk: &Arc<DiskSim>, manifest: FileId) -> Result<u64> {
    let mut live = None;
    for page_no in 0..disk.num_pages(manifest) {
        let Ok(page) = disk.read_page(manifest, page_no) else {
            continue;
        };
        if page[0] != VERSION {
            continue;
        }
        live = Some(u64::from_le_bytes([
            page[1], page[2], page[3], page[4], page[5], page[6], page[7], page[8],
        ]));
    }
    live.ok_or_else(|| Error::Corrupt("manifest holds no valid generation record".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use textjoin_storage::{FaultKind, FaultPlan};

    #[test]
    fn last_record_wins() {
        let disk = Arc::new(DiskSim::new(64));
        let m = disk.create_file("c.manifest").unwrap();
        assert!(live_generation(&disk, m).is_err(), "empty manifest");
        commit(&disk, m, 0).unwrap();
        commit(&disk, m, 1).unwrap();
        commit(&disk, m, 2).unwrap();
        assert_eq!(live_generation(&disk, m).unwrap(), 2);
    }

    #[test]
    fn corrupted_commit_falls_back_to_previous_generation() {
        let disk = Arc::new(DiskSim::new(64));
        let m = disk.create_file("c.manifest").unwrap();
        commit(&disk, m, 0).unwrap();
        commit(&disk, m, 1).unwrap();
        // The gen-1 record rots on disk: its page fails verification on
        // every read from now on, so the previous record wins.
        disk.set_fault_plan(FaultPlan::new().with_fault(
            m,
            1,
            0,
            FaultKind::BitFlip { bit_offset: 13 },
        ));
        assert_eq!(live_generation(&disk, m).unwrap(), 0);
        assert_eq!(live_generation(&disk, m).unwrap(), 0, "flip is permanent");
    }
}
