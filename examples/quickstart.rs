//! Quickstart: run all three join algorithms on synthetic collections and
//! compare their measured costs with the integrated optimizer's choice.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use textjoin::core::{hhnl, hvnl, integrated, vvm};
use textjoin::prelude::*;
use textjoin::storage::DiskSim;

fn main() -> textjoin::Result<()> {
    // A simulated disk with 4KB pages, as in the paper.
    let disk = Arc::new(DiskSim::new(4096));

    // Two synthetic collections: 600 "inner" documents and 150 "outer"
    // documents of ~50 terms each over a shared 3000-term vocabulary.
    let inner = SynthSpec::from_stats(CollectionStats::new(600, 50.0, 3000), 42)
        .generate(Arc::clone(&disk), "inner")?;
    let outer = SynthSpec::from_stats(CollectionStats::new(150, 50.0, 3000), 43)
        .generate(Arc::clone(&disk), "outer")?;

    // Inverted files (with their B+trees) for both collections.
    let inner_inv = InvertedFile::build(Arc::clone(&disk), "inner", &inner)?;
    let outer_inv = InvertedFile::build(Arc::clone(&disk), "outer", &outer)?;

    // The join: for each outer document, the λ = 5 most similar inner
    // documents, under a 64-page buffer.
    let spec = JoinSpec::new(&inner, &outer)
        .with_sys(SystemParams::paper_base().with_buffer_pages(64))
        .with_query(QueryParams::paper_base().with_lambda(5));

    println!("collections: inner N={} outer N={}", 600, 150);
    println!(
        "{:<6} {:>12} {:>12} {:>8} {:>8}",
        "alg", "seq reads", "rand reads", "cost", "passes"
    );

    let mut results = Vec::new();
    for (name, outcome) in [
        ("HHNL", hhnl::execute(&spec)?),
        ("HVNL", hvnl::execute(&spec, &inner_inv)?),
        ("VVM", vvm::execute(&spec, &inner_inv, &outer_inv)?),
    ] {
        println!(
            "{:<6} {:>12} {:>12} {:>8.0} {:>8}",
            name,
            outcome.stats.io.seq_reads,
            outcome.stats.io.rand_reads,
            outcome.stats.cost,
            outcome.stats.passes,
        );
        results.push(outcome.result);
    }

    // The three algorithms must agree exactly.
    assert_eq!(
        results[0], results[1],
        "HHNL and HVNL must produce the same join"
    );
    assert_eq!(
        results[1], results[2],
        "HVNL and VVM must produce the same join"
    );

    // The integrated algorithm estimates all six costs and runs the
    // cheapest — the paper's section 6.1 proposal.
    let chosen = integrated::execute(&spec, &inner_inv, &outer_inv, IoScenario::Dedicated)?;
    println!(
        "\nintegrated optimizer chose {} (estimates: hhs={:.0} hvs={:.0} vvs={:.0})",
        chosen.chosen,
        chosen.estimates.hhnl_seq,
        chosen.estimates.hvnl_seq,
        chosen.estimates.vvm_seq,
    );
    assert_eq!(chosen.outcome.result, results[0]);

    // Show a couple of matches.
    let (outer_doc, matches) = chosen.outcome.result.iter().next().expect("non-empty");
    println!("\nexample: outer document {outer_doc} matches:");
    for m in matches.iter().take(3) {
        println!("  inner document {:>4}  similarity {}", m.inner, m.score);
    }
    Ok(())
}
