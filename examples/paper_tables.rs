//! Regenerate the paper's evaluation tables from the library (same output
//! as the `textjoin-sim` binary, driven through the facade crate).
//!
//! ```text
//! cargo run --release --example paper_tables            # everything
//! cargo run --release --example paper_tables -- t1      # one table set
//! cargo run --release --example paper_tables -- group3
//! ```

use textjoin::sim::{findings, groups};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";

    if all || which == "t1" {
        println!("{}", groups::t1_statistics());
    }
    if all || which == "group1" {
        groups::group1().iter().for_each(|t| println!("{t}"));
    }
    if all || which == "group2" {
        groups::group2().iter().for_each(|t| println!("{t}"));
    }
    if all || which == "group3" {
        groups::group3().iter().for_each(|t| println!("{t}"));
    }
    if all || which == "group4" {
        groups::group4().iter().for_each(|t| println!("{t}"));
    }
    if all || which == "group5" {
        groups::group5().iter().for_each(|t| println!("{t}"));
    }
    if all || which == "findings" {
        println!("{}", findings::findings_table());
    }
}
