//! Reviewer assignment — the related problem the paper cites from Dumais &
//! Nielsen (SIGIR 1992): match submitted paper abstracts against reviewer
//! profiles. "The problem is essentially to process a join between two
//! textual attributes" (section 1).
//!
//! Here the *reviewer profiles* form the inner collection (we want λ
//! reviewers per submission) and the *submissions* the outer collection.
//! The example uses the direct library API (no SQL) with tf-idf weighting —
//! the "more realistic similarity function" the paper mentions in
//! section 3 — and demonstrates the asymmetry of SIMILAR_TO by running the
//! join in both directions.
//!
//! ```text
//! cargo run --release --example reviewer_assignment
//! ```

use std::sync::Arc;
use textjoin::core::hvnl;
use textjoin::prelude::*;
use textjoin::storage::DiskSim;

const REVIEWERS: &[(&str, &str)] = &[
    (
        "R1: query processing",
        "query optimization join algorithms cost models relational query \
         processing execution plans selectivity estimation",
    ),
    (
        "R2: information retrieval",
        "information retrieval inverted files text indexing ranking vector \
         space model document collections relevance feedback",
    ),
    (
        "R3: storage systems",
        "storage engines buffer management disk scheduling page replacement \
         caching file systems input output performance",
    ),
    (
        "R4: distributed systems",
        "distributed databases replication consensus transactions two phase \
         commit concurrency control multidatabase systems",
    ),
    (
        "R5: machine learning",
        "machine learning classification clustering neural networks feature \
         selection statistical models training data",
    ),
];

const SUBMISSIONS: &[(&str, &str)] = &[
    (
        "S1",
        "We present three join algorithms for textual attributes in \
         multidatabase systems, with input output cost models and a study of \
         buffer management effects on query processing performance.",
    ),
    (
        "S2",
        "A new inverted file organization for ranking documents in the vector \
         space model, improving text indexing and retrieval performance.",
    ),
    (
        "S3",
        "Clustering document collections with statistical models and feature \
         selection for improved classification of text.",
    ),
];

fn main() -> textjoin::Result<()> {
    let disk = Arc::new(DiskSim::new(4096));

    // One shared registry = the paper's standard term-number mapping.
    let mut registry = TermRegistry::new();
    let reviewer_docs: Vec<Document> = REVIEWERS
        .iter()
        .map(|(_, profile)| registry.ingest(profile))
        .collect();
    let submission_docs: Vec<Document> = SUBMISSIONS
        .iter()
        .map(|(_, abstract_)| registry.ingest(abstract_))
        .collect();

    let reviewers = Collection::build(Arc::clone(&disk), "reviewers", reviewer_docs)?;
    let submissions = Collection::build(Arc::clone(&disk), "submissions", submission_docs)?;
    let reviewers_inv = InvertedFile::build(Arc::clone(&disk), "reviewers", &reviewers)?;
    let submissions_inv = InvertedFile::build(Arc::clone(&disk), "submissions", &submissions)?;

    // Forward direction: λ = 2 reviewers for each submission.
    let spec = JoinSpec::new(&reviewers, &submissions)
        .with_query(QueryParams::paper_base().with_lambda(2))
        .with_weighting(Weighting::TfIdf);
    let outcome = hvnl::execute(&spec, &reviewers_inv)?;

    println!("reviewers SIMILAR_TO(2) submissions — 2 reviewers per submission:\n");
    for (sub, matches) in outcome.result.iter() {
        println!("  {}:", SUBMISSIONS[sub.index()].0);
        for m in matches {
            println!(
                "    {}  (tf-idf cosine {:.3})",
                REVIEWERS[m.inner.index()].0,
                m.score.value()
            );
        }
    }

    // Backward direction: which submissions best fit each reviewer? The
    // operator is asymmetric (section 2) — this is a different question
    // with a different answer, not a transposition of the forward result.
    let spec_back = JoinSpec::new(&submissions, &reviewers)
        .with_query(QueryParams::paper_base().with_lambda(1))
        .with_weighting(Weighting::TfIdf);
    let back = hvnl::execute(&spec_back, &submissions_inv)?;
    println!("\nsubmissions SIMILAR_TO(1) reviewers — best submission per reviewer:\n");
    for (reviewer, matches) in back.result.iter() {
        for m in matches {
            println!(
                "  {} ← {} ({:.3})",
                REVIEWERS[reviewer.index()].0,
                SUBMISSIONS[m.inner.index()].0,
                m.score.value()
            );
        }
    }
    Ok(())
}
