//! Document clustering — the paper's section 1 notes that the IR
//! clustering problem ("find, for each document d, those documents similar
//! to d in the same collection") is the special case of the textual join
//! where both collections are identical.
//!
//! This example builds a collection with planted topic clusters, runs the
//! self-join through the integrated optimizer (self matches excluded), and
//! recovers the topics with single-link grouping.
//!
//! ```text
//! cargo run --release --example clustering
//! ```

use std::sync::Arc;
use textjoin::collection::synth::Locality;
use textjoin::core::cluster;
use textjoin::prelude::*;
use textjoin::storage::DiskSim;

fn main() -> textjoin::Result<()> {
    let disk = Arc::new(DiskSim::new(4096));

    // 240 documents in 8 planted topic clusters: each document draws 80%
    // of its vocabulary from its cluster's slice.
    let mut spec = SynthSpec::from_stats(CollectionStats::new(240, 30.0, 4000), 77);
    spec.locality = Locality::Clustered(8);
    let collection = spec.generate(Arc::clone(&disk), "corpus")?;
    let inverted = InvertedFile::build(Arc::clone(&disk), "corpus", &collection)?;

    // λ = 4 nearest neighbours per document, cosine similarity.
    let outcome = cluster::nearest_neighbors(
        &collection,
        &inverted,
        4,
        SystemParams::paper_base().with_buffer_pages(128),
        Weighting::Cosine,
    )?;
    println!(
        "self-join ran as {} — {} page-units of I/O",
        outcome.stats.algorithm, outcome.stats.cost
    );

    // Sweep the linkage threshold: higher thresholds split the corpus into
    // more, purer clusters.
    println!(
        "\n{:>10} {:>10} {:>14} {:>12}",
        "threshold", "clusters", "largest", "singletons"
    );
    for threshold in [0.05, 0.15, 0.30, 0.50, 0.80] {
        let clusters = cluster::single_link_clusters(
            &outcome,
            collection.store().num_docs(),
            Score::new(threshold),
        );
        let largest = clusters.first().map(Vec::len).unwrap_or(0);
        let singletons = clusters.iter().filter(|c| c.len() == 1).count();
        println!(
            "{threshold:>10.2} {:>10} {:>14} {:>12}",
            clusters.len(),
            largest,
            singletons
        );
    }

    // Show one recovered cluster: documents whose ids came from the same
    // planted topic slice should dominate.
    let clusters =
        cluster::single_link_clusters(&outcome, collection.store().num_docs(), Score::new(0.30));
    let sample = &clusters[0];
    println!(
        "\nlargest cluster at threshold 0.30 has {} documents, ids {:?}…",
        sample.len(),
        &sample[..sample.len().min(10)]
    );
    // Planted clusters are contiguous 30-document ranges; measure how
    // concentrated the recovered cluster is.
    let planted: std::collections::HashSet<u32> = sample.iter().map(|d| d.raw() / 30).collect();
    println!("it spans {} of the 8 planted topics", planted.len());
    Ok(())
}
