//! `EXPLAIN ANALYZE`: run a SIMILAR_TO query's plan for real and compare
//! the section-5 cost predictions with measured page traffic, phase by
//! phase.
//!
//! ```text
//! cargo run --release --example explain_analyze
//! ```

use std::sync::Arc;
use textjoin::common::{QueryParams, SystemParams};
use textjoin::core::IoScenario;
use textjoin::query::catalog::{Catalog, ColumnType, RelationBuilder, Value};
use textjoin::query::explain_analyze_query;
use textjoin::storage::DiskSim;

fn main() -> textjoin::Result<()> {
    // Small pages so the toy catalog still spans enough of the disk for
    // the drift numbers to mean something.
    let disk = Arc::new(DiskSim::new(512));
    let mut catalog = Catalog::new(disk);

    // Synthetic text: every row gets 40 distinct words from a rotating
    // 200-word vocabulary, so the two relations overlap heavily.
    let word = |i: usize| format!("w{:03}", i % 200);
    let mut docs = RelationBuilder::new("Docs")
        .column("Id", ColumnType::Int)
        .column("Body", ColumnType::Text);
    for r in 0..120 {
        let text: Vec<String> = (0..40).map(|j| word(r * 7 + j)).collect();
        docs = docs.row(vec![Value::Int(r as i64), Value::Text(text.join(" "))])?;
    }
    catalog.add(docs)?;
    let mut queries = RelationBuilder::new("Queries")
        .column("Id", ColumnType::Int)
        .column("Body", ColumnType::Text);
    for r in 0..60 {
        let text: Vec<String> = (0..40).map(|j| word(r * 11 + 3 + j)).collect();
        queries = queries.row(vec![Value::Int(r as i64), Value::Text(text.join(" "))])?;
    }
    catalog.add(queries)?;

    let out = explain_analyze_query(
        &catalog,
        "Select D.Id, Q.Id From Docs D, Queries Q \
         Where D.Body SIMILAR_TO(3) Q.Body",
        SystemParams {
            buffer_pages: 1200,
            page_size: 512,
            alpha: 5.0,
        },
        QueryParams::paper_base(),
        IoScenario::Dedicated,
    )?;
    print!("{}", out.text);
    Ok(())
}
