//! Explore the integrated algorithm's decision surface: which of HHNL,
//! HVNL, VVM wins as the workload shape changes, at the paper's full TREC-1
//! scale (pure cost-model arithmetic — no data is generated).
//!
//! ```text
//! cargo run --release --example algorithm_picker
//! ```

use textjoin::costmodel::{choose, CostEstimates, IoScenario, JoinInputs};
use textjoin::prelude::*;

fn show(label: &str, inputs: &JoinInputs) {
    let est = CostEstimates::compute(inputs);
    let (best, cost) = est.best(IoScenario::Dedicated);
    println!(
        "{label:<44} hhs={:>10.0} hvs={:>10.0} vvs={:>10.0}  → {best} ({cost:.0})",
        est.hhnl_seq, est.hvnl_seq, est.vvm_seq
    );
}

fn main() {
    let sys = SystemParams::paper_base();
    let query = QueryParams::paper_base();
    let wsj = CollectionStats::wsj();
    let fr = CollectionStats::fr();
    let doe = CollectionStats::doe();

    println!("base parameters: B = 10 000 pages, P = 4KB, α = 5, λ = 20, δ = 0.1\n");

    println!("— full self-joins (group 1 regime): HHNL territory —");
    for (name, c) in [("WSJ ⋈ WSJ", wsj), ("FR ⋈ FR", fr), ("DOE ⋈ DOE", doe)] {
        show(name, &JoinInputs::with_paper_q(c, c, sys, query));
    }

    println!("\n— shrinking the outer side of WSJ ⋈ WSJ (group 3 regime) —");
    for m in [1u64, 5, 20, 50, 100, 200, 500, 2000] {
        let inputs =
            JoinInputs::with_paper_q(wsj, wsj.select_docs(m), sys, query).with_selected_outer(wsj);
        show(&format!("WSJ ⋈ (WSJ with {m} selected docs)"), &inputs);
    }

    println!("\n— derived collections: fewer, larger documents (group 5 regime) —");
    for f in [1u64, 4, 16, 64] {
        let d = fr.derive_scaled(f);
        show(
            &format!(
                "FR/{f} ⋈ FR/{f} ({} docs of {} terms)",
                d.num_docs, d.avg_terms_per_doc
            ),
            &JoinInputs::with_paper_q(d, d, sys, query),
        );
    }

    println!("\n— the same, priced under the worst-case shared device —");
    for f in [16u64, 64] {
        let d = fr.derive_scaled(f);
        let inputs = JoinInputs::with_paper_q(d, d, sys, query);
        let dedicated = choose(&inputs, IoScenario::Dedicated);
        let shared = choose(&inputs, IoScenario::SharedWorstCase);
        println!(
            "FR/{f}: dedicated drive → {dedicated}, shared worst case → {shared} \
             (finding 5: only VVM is re-ranked)"
        );
    }

    // The multidatabase dimension: the collections live at different
    // sites, so shipping costs join the picture (the paper's future-work
    // item 2). The standard term-number mapping of section 3 matters:
    // without it, shipped documents are ~5× larger.
    use textjoin::costmodel::{choose_distributed, CommParams, TermEncoding};
    println!("\n— distributed: WSJ at site 1, a 50-doc selection of DOE at site 2 —");
    let doe_sel = doe.select_docs(50);
    let inputs = JoinInputs::with_paper_q(wsj, doe_sel, sys, query).with_selected_outer(doe);
    for (label, encoding) in [
        ("standard term numbers", TermEncoding::StandardNumbers),
        ("actual term strings  ", TermEncoding::ActualTerms),
    ] {
        for beta in [0.5, 5.0] {
            let comm = CommParams { beta, encoding };
            if let Some((alg, site, cost)) = choose_distributed(&inputs, &comm) {
                println!("{label}, β={beta:<4} → run {alg} at {site:?} (total {cost:.0})");
            }
        }
    }
}
