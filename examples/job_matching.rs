//! The paper's motivating example (section 2): match applicants to
//! positions with extended SQL.
//!
//! ```sql
//! SELECT P.P#, P.Title, A.SSN, A.Name
//! FROM Positions P, Applicants A
//! WHERE P.Title LIKE '%Engineer%'
//!   AND A.Resume SIMILAR_TO(2) P.Job_descr
//! ```
//!
//! ```text
//! cargo run --release --example job_matching
//! ```

use std::sync::Arc;
use textjoin::prelude::*;
use textjoin::query::run_query;
use textjoin::storage::DiskSim;

const POSITIONS: &[(i64, &str, &str)] = &[
    (
        100,
        "Senior Database Engineer",
        "Design and operate distributed database systems: query optimization, \
         indexing, transaction processing, storage engines and replication. \
         Experience with cost-based query optimizers and inverted indexes a plus.",
    ),
    (
        101,
        "Machine Learning Engineer",
        "Build and deploy machine learning models: neural networks, gradient \
         boosting, feature engineering, model serving and evaluation pipelines \
         over large datasets.",
    ),
    (
        102,
        "Frontend Developer",
        "Develop responsive web interfaces with modern javascript frameworks, \
         component design systems, accessibility and performance tuning.",
    ),
    (
        103,
        "Site Reliability Engineer",
        "Operate production infrastructure: monitoring, alerting, incident \
         response, capacity planning, kubernetes clusters and deployment \
         automation.",
    ),
    (
        104,
        "Head Chef",
        "Lead the kitchen team: menu design, italian cuisine, pasta making, \
         supplier management and food safety.",
    ),
];

const APPLICANTS: &[(&str, &str, i64, &str)] = &[
    (
        "111-11-1111",
        "Ada Lovelace",
        12,
        "Fifteen years building database storage engines and query optimizers; \
         implemented cost-based optimization, B-tree and inverted index \
         structures, transaction processing and replication protocols.",
    ),
    (
        "222-22-2222",
        "Grace Hopper",
        9,
        "Compiler construction and database query languages; designed query \
         optimization passes and indexing subsystems for relational systems.",
    ),
    (
        "333-33-3333",
        "Alan Turing",
        7,
        "Machine learning research: neural networks, model evaluation, feature \
         engineering and statistical learning over large datasets.",
    ),
    (
        "444-44-4444",
        "Katherine Johnson",
        6,
        "Numerical computing and data pipelines; gradient boosting models, \
         evaluation pipelines, model serving in production.",
    ),
    (
        "555-55-5555",
        "Tim Berners-Lee",
        15,
        "Web platform expert: javascript frameworks, component systems, \
         accessibility standards, browser performance tuning.",
    ),
    (
        "666-66-6666",
        "Margaret Hamilton",
        11,
        "Reliability engineering for flight software; monitoring, incident \
         response, capacity planning and deployment automation for critical \
         infrastructure.",
    ),
    (
        "777-77-7777",
        "Massimo Bottura",
        20,
        "Michelin-starred italian cuisine: pasta making, menu design, kitchen \
         leadership and supplier management.",
    ),
    (
        "888-88-8888",
        "Julia Child",
        25,
        "French and italian cooking, recipe development, menu design and \
         culinary education.",
    ),
];

fn main() -> textjoin::Result<()> {
    let disk = Arc::new(DiskSim::new(4096));
    let mut catalog = Catalog::new(disk);

    let mut positions = RelationBuilder::new("Positions")
        .column("P#", ColumnType::Int)
        .column("Title", ColumnType::Str)
        .column("Job_descr", ColumnType::Text);
    for &(pnum, title, descr) in POSITIONS {
        positions = positions.row(vec![
            Value::Int(pnum),
            Value::Str(title.to_string()),
            Value::Text(descr.to_string()),
        ])?;
    }
    catalog.add(positions)?;

    let mut applicants = RelationBuilder::new("Applicants")
        .column("SSN", ColumnType::Str)
        .column("Name", ColumnType::Str)
        .column("Years", ColumnType::Int)
        .column("Resume", ColumnType::Text);
    for &(ssn, name, years, resume) in APPLICANTS {
        applicants = applicants.row(vec![
            Value::Str(ssn.to_string()),
            Value::Str(name.to_string()),
            Value::Int(years),
            Value::Text(resume.to_string()),
        ])?;
    }
    catalog.add(applicants)?;

    let queries = [
        // The paper's first query: two best applicants per position.
        "Select P.P#, P.Title, A.SSN, A.Name From Positions P, Applicants A \
         Where A.Resume SIMILAR_TO(2) P.Job_descr",
        // The paper's second query: selection on Title first.
        "Select P.P#, P.Title, A.SSN, A.Name From Positions P, Applicants A \
         Where P.Title like '%Engineer%' and A.Resume SIMILAR_TO(2) P.Job_descr",
        // A further selection on the inner relation: seniors only.
        "Select P.Title, A.Name From Positions P, Applicants A \
         Where A.Years >= 10 and A.Resume SIMILAR_TO(1) P.Job_descr",
    ];

    for sql in queries {
        println!("SQL> {sql}\n");
        // EXPLAIN first: the plan, the pushdown and the section 6.1
        // cost-based choice.
        let explanation = textjoin::query::explain_query(
            &catalog,
            sql,
            SystemParams::paper_base(),
            QueryParams::paper_base(),
            IoScenario::Dedicated,
        )?;
        println!("{explanation}");
        let out = run_query(
            &catalog,
            sql,
            SystemParams::paper_base(),
            QueryParams::paper_base(),
            IoScenario::Dedicated,
        )?;
        println!("-- executed with {} --", out.algorithm);
        println!("{}", out.headers.join(" | "));
        for row in &out.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("{}", cells.join(" | "));
        }
        println!();
    }
    Ok(())
}
