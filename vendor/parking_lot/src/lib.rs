//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface this workspace uses is provided: `Mutex`/`MutexGuard`
//! and `RwLock` with the parking_lot calling convention (no poison
//! `Result`s — a poisoned lock panics, matching parking_lot's behaviour of
//! not tracking poison at all for the common case where no thread panics
//! while holding a guard).

use std::fmt;

pub use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn try_lock_blocks_on_contention() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
