//! Deterministic case runner.

/// How many cases a `proptest!` test runs (`with_cases`) and how many
/// rejected cases (`prop_assume!`) are tolerated before giving up.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not failed.
    Reject(String),
    /// `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic generator driving all strategies: xoshiro256++ seeded
/// from the test name, so every run of a given test replays the same
/// cases and a failure is reproducible by rerunning the test.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let wide = self.next_u64() as u128 * bound as u128;
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform draw from `[0, 1)` on the 53-bit dyadic grid.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn name_seed(name: &str) -> u64 {
    // FNV-1a, stable across runs and platforms.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Executes `case` until `config.cases` cases pass, panicking on the
/// first failure with the generated inputs that provoked it.
pub fn run(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
) {
    let mut rng = TestRng::from_seed(name_seed(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest `{name}`: too many rejected cases \
                         ({rejected}; last assume: {why})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {case_no}: {msg}\n\
                     inputs:\n{inputs}",
                    case_no = passed + 1,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_stays_in_bounds_and_covers() {
        let mut rng = TestRng::from_seed(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn same_name_replays_same_cases() {
        let mut a = TestRng::from_seed(name_seed("x"));
        let mut b = TestRng::from_seed(name_seed("x"));
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_reports_inputs() {
        run(&ProptestConfig::with_cases(4), "always_fails", |rng| {
            let v = rng.below(10);
            (format!("  v = {v:?}\n"), Err(TestCaseError::fail("nope")))
        });
    }
}
