//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! deterministic, generate-only property-test harness:
//!
//! - [`strategy::Strategy`] with `prop_map`, ranges, tuples, [`Just`],
//!   unions (`prop_oneof!`), [`collection::vec`], [`collection::btree_map`]
//!   and [`bool::ANY`];
//! - the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//!   `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`;
//! - a runner that executes N deterministic cases per test and reports the
//!   failing inputs (`Debug`-printed) and case number on failure.
//!
//! Differences from the real crate, by design: no shrinking (a failure
//! reports the raw generated inputs, not a minimal counterexample), no
//! persisted failure seeds (cases are seeded deterministically from the
//! test name, so a failure reproduces on every run), and no weighted
//! `prop_oneof!` arms.

pub mod strategy;
pub mod test_runner;

pub use strategy::Just;

/// Strategies for primitive `bool` (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_map}`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy};
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `BTreeSet` built from up to `size` generated elements (duplicates
    /// collapse, so the final length may be smaller).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            (0..target).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[derive(Clone, Debug)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// A `BTreeMap` built from up to `size` generated pairs (duplicate
    /// keys collapse, so the final length may be smaller).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            (0..target)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs every generated value of a test case through `$cond`; on failure
/// the case aborts and the harness reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Discards the current case (it does not count toward the case budget)
/// when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Picks one of the argument strategies uniformly per case. All arms must
/// produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Declares property tests. Each `fn name(binding in strategy, other: Type)`
/// becomes a `#[test]` running `ProptestConfig::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                let mut __inputs = ::std::string::String::new();
                $crate::__proptest_bind!(__rng, __inputs; $($params)*);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                (__inputs, __outcome)
            });
        }
    )*};
}

/// Parameter-list muncher: each `name in strategy` or `name: Type`
/// parameter becomes a `let` binding generated from its strategy, plus a
/// `Debug` line appended to the failure report.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $inputs:ident;) => {};
    ($rng:ident, $inputs:ident; $an:ident in $strat:expr) => {
        $crate::__proptest_bind!($rng, $inputs; $an in $strat,);
    };
    ($rng:ident, $inputs:ident; $an:ident in $strat:expr, $($rest:tt)*) => {
        let $an = $crate::strategy::Strategy::generate(&($strat), $rng);
        $inputs.push_str(&format!(concat!("  ", stringify!($an), " = {:?}\n"), &$an));
        $crate::__proptest_bind!($rng, $inputs; $($rest)*);
    };
    ($rng:ident, $inputs:ident; $an:ident: $ty:ty) => {
        $crate::__proptest_bind!($rng, $inputs; $an: $ty,);
    };
    ($rng:ident, $inputs:ident; $an:ident: $ty:ty, $($rest:tt)*) => {
        let $an = $crate::strategy::Strategy::generate(
            &<$ty as $crate::strategy::Arbitrary>::arbitrary(),
            $rng,
        );
        $inputs.push_str(&format!(concat!("  ", stringify!($an), " = {:?}\n"), &$an));
        $crate::__proptest_bind!($rng, $inputs; $($rest)*);
    };
}
