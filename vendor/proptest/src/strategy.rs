//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Generates values of `Value` from a deterministic RNG. Unlike the real
/// crate there is no intermediate value tree: generation is direct and
/// shrinking is not supported.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Boxes a strategy for heterogeneous storage (`prop_oneof!` arms).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// `prop_oneof!` backing: picks one arm uniformly per generated value.
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Debug> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Length ranges accepted by collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    pub fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo) as u64 + 1;
        self.lo + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Default whole-domain strategies for bare-typed `proptest!` parameters
/// (`w: u16`).
pub trait Arbitrary: Sized + Debug {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = crate::bool::Any;
    fn arbitrary() -> Self::Strategy {
        crate::bool::ANY
    }
}

impl Arbitrary for f64 {
    type Strategy = Range<f64>;
    fn arbitrary() -> Self::Strategy {
        // Bounded, finite domain: the workspace's formulas assume finite
        // inputs, and the real crate's default f64 strategy is similarly
        // tame unless configured otherwise.
        -1e12..1e12
    }
}
