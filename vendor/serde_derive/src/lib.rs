//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on parameter and
//! statistics structs so they stay wire-ready, but nothing in-tree
//! actually serializes through serde (exports are hand-rolled JSON/CSV).
//! These derives therefore accept the full attribute syntax and expand to
//! nothing; the `serde` facade crate provides blanket trait impls so
//! `T: Serialize` bounds keep compiling if they ever appear.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
