//! Offline stand-in for `rand`, exposing the 0.10-style trait surface the
//! workspace uses: `Rng` (the core generator trait), `RngExt` (the
//! extension carrying `random`/`random_range`, blanket-implemented for
//! every `Rng`), `SeedableRng::seed_from_u64`, and `rngs::StdRng`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the
//! cryptographic generator the real crate ships, but statistically solid,
//! fast, fully deterministic for a given seed, and dependency-free, which
//! is exactly what the synthetic-collection generator and the benches need.

use std::ops::{Range, RangeInclusive};

/// Core generator trait: a source of uniformly distributed `u64`s.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over any [`Rng`]; blanket-implemented, so importing
/// the trait makes `random()`/`random_range()` available on every
/// generator.
pub trait RngExt: Rng {
    /// A uniformly random value of `T` over its natural domain (`[0, 1)`
    /// for floats, the full range for integers, fair coin for `bool`).
    fn random<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self)
    }

    /// A uniformly random value inside `range`; panics when the range is
    /// empty, matching the real crate.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Alias kept for pre-0.9 call sites.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng> RngExt for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a canonical uniform distribution for [`RngExt::random`].
pub trait FromRandom {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for f64 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1) on the dyadic grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRandom for bool {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly for [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling on `[0, bound)` via Lemire's widening
/// multiply with rejection.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let wide = x as u128 * bound as u128;
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_random(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ with SplitMix64 seeding — deterministic, fast, and
    /// good enough for synthetic data and property tests.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_random_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.random_range(3u32..7);
            assert!((3..7).contains(&v));
            let w = rng.random_range(0usize..=3);
            assert!(w <= 3);
            seen_lo |= w == 0;
            seen_hi |= w == 3;
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints must be reachable");
    }

    #[test]
    fn works_through_mut_ref_and_impl_rng() {
        fn draw(rng: &mut impl Rng) -> u64 {
            rng.random_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = draw(&mut rng);
        assert!(v < 100);
    }
}
