//! Offline stand-in for `crossbeam`, providing only the scoped-thread API
//! this workspace uses (`crossbeam::thread::scope` with closures that
//! receive `&Scope` and return joinable handles).
//!
//! Backed by `std::thread::scope`, which provides the same structured
//! guarantee (all spawned threads join before `scope` returns). Matching
//! crossbeam's signature, `scope` returns `thread::Result<R>`: `Ok` with
//! the closure's value when no spawned thread panicked. Unlike crossbeam —
//! which collects child panics into the `Err` arm — `std::thread::scope`
//! resumes a child's panic on the parent, so a panicking child aborts the
//! scope instead of surfacing as `Err`; callers here only ever `expect`
//! the result, so the difference is unobservable in this workspace.

pub mod thread {
    /// Scoped-thread handle passed to `scope`'s closure and to every
    /// spawned closure (crossbeam spawns receive `&Scope` as an argument).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread; `join` returns the closure's value.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || {
                    let scope = Scope { inner: inner_scope };
                    f(&scope)
                }),
            }
        }
    }

    /// Runs `f` with a scope handle; every thread spawned through the
    /// handle is joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7u32).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
