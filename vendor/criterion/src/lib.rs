//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group` with `sample_size`/`measurement_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`/
//! `iter_with_setup`, and the `criterion_group!`/`criterion_main!`
//! macros — backed by a simple wall-clock harness: each benchmark is
//! warmed up once, then timed over `sample_size` samples whose median
//! per-iteration time is reported to stdout. No statistical analysis,
//! plots, or baseline comparison; the numbers are honest medians suitable
//! for relative A/B runs in this repository.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
            default_measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &name.to_string(),
            self.default_sample_size,
            self.default_measurement_time,
            &mut f,
        );
        self
    }
}

/// A named group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.measurement_time, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// A function-plus-parameter benchmark label.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing handle: the closure passed to `iter` is the measured routine.
pub struct Bencher {
    /// Median nanoseconds per iteration over the collected samples.
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-sample iteration-count calibration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let budget = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((budget / once.as_nanos() as f64).ceil() as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64 / iters as f64;
            self.samples.push(nanos);
        }
    }

    pub fn iter_with_setup<S, O, Setup, R>(&mut self, mut setup: Setup, mut routine: R)
    where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    bencher
        .samples
        .sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let median = bencher.samples[bencher.samples.len() / 2];
    println!("{label:<40} median {}", format_nanos(median));
}

fn format_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Builds a function that runs each listed benchmark with a fresh
/// `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point: runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3).measurement_time(Duration::from_millis(5));
        let mut runs = 0u32;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("id", 7), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn iter_with_setup_excludes_setup_time() {
        let mut c = Criterion::default();
        c.bench_function("setup", |b| {
            b.iter_with_setup(|| vec![1u8; 16], |v| black_box(v.len()))
        });
    }
}
