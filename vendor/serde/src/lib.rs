//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op derives from the stand-in `serde_derive` and
//! declares `Serialize`/`Deserialize` as universally satisfied marker
//! traits. This keeps every `#[derive(Serialize, Deserialize)]` and any
//! `T: Serialize` bound compiling without pulling in the real
//! (network-fetched) crates; actual serialization in this workspace is
//! hand-rolled (JSON-lines, Prometheus text, CSV).

pub use serde_derive::{Deserialize, Serialize};

mod markers {
    pub trait Serialize {}
    impl<T: ?Sized> Serialize for T {}

    pub trait Deserialize {}
    impl<T: ?Sized> Deserialize for T {}
}

pub use markers::{Deserialize as DeserializeTrait, Serialize as SerializeTrait};
