//! # textjoin
//!
//! A complete, executable reproduction of *“Performance Analysis of Several
//! Algorithms for Processing Joins between Textual Attributes”* (Weiyi
//! Meng, Clement Yu, Wei Wang, Naphtali Rishe — ICDE 1996).
//!
//! The paper studies the join `R1.C1 SIMILAR_TO(λ) R2.C2` between *textual
//! attributes*: for each document of the outer collection `C2`, find the
//! `λ` documents of the inner collection `C1` most similar to it. This
//! crate re-exports the whole stack:
//!
//! * [`storage`] — a simulated paged disk with the paper's I/O cost model
//!   (sequential page = 1, random page = α) and a byte-exact memory budget;
//! * [`collection`] — paged document collections, a text-ingestion
//!   pipeline with the *standard term-number mapping*, and a Zipfian
//!   synthetic generator matching the TREC-1 statistics the paper uses;
//! * [`invfile`] — inverted files with page-based B+tree dictionaries,
//!   plus the in-memory delta overlay of the mutation path;
//! * [`live`] — incrementally-updatable collections: a checksummed
//!   write-ahead log, delta segments, and a crash-safe background merge;
//! * [`costmodel`] — the section 5 cost formulas
//!   (`hhs`/`hhr`/`hvs`/`hvr`/`vvs`/`vvr`) and the section 6 `q` heuristic;
//! * [`core`] — executable HHNL, HVNL and VVM join algorithms plus the
//!   integrated cost-based dispatcher of section 6.1;
//! * [`query`] — an extended-SQL front end
//!   (`SELECT … WHERE a.X SIMILAR_TO(λ) b.Y AND …`) with selection
//!   pushdown;
//! * [`obs`] — the observability stack: span tracing, a metrics registry
//!   with Prometheus export, per-query reports, and the live layer
//!   (in-flight tickets with progress/ETA, cooperative cancellation and
//!   the embedded scrape endpoint);
//! * [`sim`] — the harness regenerating the paper's five experiment groups
//!   and checking its five findings.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use textjoin::prelude::*;
//!
//! // A simulated disk and two small synthetic collections.
//! let disk = Arc::new(DiskSim::new(4096));
//! let inner = SynthSpec::from_stats(CollectionStats::new(200, 40.0, 2000), 1)
//!     .generate(Arc::clone(&disk), "inner")?;
//! let outer = SynthSpec::from_stats(CollectionStats::new(50, 40.0, 2000), 2)
//!     .generate(Arc::clone(&disk), "outer")?;
//! let inv = InvertedFile::build(Arc::clone(&disk), "inner", &inner)?;
//!
//! // λ = 3 most similar inner documents per outer document, via HVNL.
//! let spec = JoinSpec::new(&inner, &outer)
//!     .with_query(QueryParams::paper_base().with_lambda(3));
//! let outcome = textjoin::core::hvnl::execute(&spec, &inv)?;
//! assert_eq!(outcome.result.num_outer_docs(), 50);
//! println!("HVNL cost: {} page-units", outcome.stats.cost);
//! # Ok::<(), textjoin::Error>(())
//! ```

pub use textjoin_collection as collection;
pub use textjoin_common as common;
pub use textjoin_core as core;
pub use textjoin_costmodel as costmodel;
pub use textjoin_invfile as invfile;
pub use textjoin_live as live;
pub use textjoin_obs as obs;
pub use textjoin_query as query;
pub use textjoin_sim as sim;
pub use textjoin_storage as storage;

pub use textjoin_common::{Error, Result};

/// The most commonly used items in one import.
pub mod prelude {
    pub use textjoin_collection::{Collection, Document, SynthSpec, TermRegistry};
    pub use textjoin_common::{CollectionStats, DocId, QueryParams, Score, SystemParams, TermId};
    pub use textjoin_core::{
        integrated, Algorithm, IoScenario, JoinOutcome, JoinResult, JoinSpec, Match, OuterDocs,
        Weighting,
    };
    pub use textjoin_costmodel::{CostEstimates, JoinInputs};
    pub use textjoin_invfile::InvertedFile;
    pub use textjoin_query::{Catalog, ColumnType, RelationBuilder, Value};
    pub use textjoin_storage::DiskSim;
}
