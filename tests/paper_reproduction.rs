//! Paper-level reproduction checks: the statistics table, all five
//! experiment groups, the five findings, and the model-vs-measured
//! validation — everything EXPERIMENTS.md records, asserted.

use textjoin::costmodel::{Algorithm, CostEstimates, IoScenario, JoinInputs};
use textjoin::prelude::*;
use textjoin::sim::{findings, groups, validate};

#[test]
fn t1_statistics_table_matches_paper() {
    let t = groups::t1_statistics();
    assert_eq!(t.rows.len(), 3);
    for row in &t.rows {
        // Collection pages: ours within 5% of the paper's published value.
        let paper: f64 = row[4].parse().unwrap();
        let ours: f64 = row[5].parse().unwrap();
        assert!(
            (paper - ours).abs() / paper < 0.05,
            "collection size drift: {row:?}"
        );
        // Average entry size within the table's rounding.
        let paper_j: f64 = row[8].parse().unwrap();
        let ours_j: f64 = row[9].parse().unwrap();
        assert!((paper_j - ours_j).abs() < 0.02, "entry size drift: {row:?}");
    }
}

#[test]
fn all_groups_generate_complete_tables() {
    assert_eq!(
        groups::group1().len(),
        6,
        "3 collections × (B sweep + α sweep)"
    );
    assert_eq!(groups::group2().len(), 6, "6 ordered pairs");
    assert_eq!(groups::group3().len(), 3);
    assert_eq!(groups::group4().len(), 3);
    assert_eq!(groups::group5().len(), 3);
    for t in groups::group1().iter().chain(groups::group2().iter()) {
        assert!(!t.rows.is_empty());
        // Every row names a winner.
        for row in &t.rows {
            assert!(
                ["HHNL", "HVNL", "VVM"].contains(&row[7].as_str()),
                "{row:?}"
            );
        }
    }
}

#[test]
fn five_findings_hold() {
    let all = findings::check_findings();
    assert_eq!(all.len(), 5);
    for f in &all {
        assert!(
            f.holds,
            "finding {} failed: {}\n  evidence: {}",
            f.id, f.claim, f.evidence
        );
    }
}

#[test]
fn group1_alpha_only_scales_the_random_estimates() {
    // In group 1's α sweep, the sequential estimates must be flat while the
    // worst-case estimates grow with α.
    for t in groups::group1() {
        if !t.title.contains("varying α") {
            continue;
        }
        let hhs: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(
            hhs.windows(2).all(|w| w[0] == w[1]),
            "hhs must not depend on α: {hhs:?}"
        );
        let hhr: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(
            hhr.windows(2).all(|w| w[0] <= w[1]),
            "hhr must grow with α: {hhr:?}"
        );
    }
}

#[test]
fn group3_crossover_shape() {
    // Along each group-3 sweep, HVNL's cost grows with M while HHNL's
    // stays within a factor of its full-join cost, producing exactly one
    // crossover from HVNL to not-HVNL.
    for t in groups::group3() {
        let winners: Vec<&str> = t.rows.iter().map(|r| r[7].as_str()).collect();
        let first_non_hvnl = winners
            .iter()
            .position(|w| *w != "HVNL")
            .unwrap_or(winners.len());
        assert!(
            winners[..first_non_hvnl].iter().all(|w| *w == "HVNL")
                && winners[first_non_hvnl..].iter().all(|w| *w != "HVNL"),
            "{}: winners not a single HVNL→other crossover: {winners:?}",
            t.title
        );
    }
}

#[test]
fn validation_quick_band() {
    let rows = validate::validate_all(&validate::quick_configs()).unwrap();
    for r in &rows {
        let band = match r.algorithm {
            Algorithm::Hhnl | Algorithm::Vvm => 0.5..=2.0,
            Algorithm::Hvnl => 0.2..=5.0,
        };
        assert!(
            band.contains(&r.ratio()),
            "{} {}: ratio {:.2} outside band",
            r.label,
            r.algorithm,
            r.ratio()
        );
    }
}

#[test]
fn hhnl_is_insensitive_to_lambda() {
    // Section 6: "only HHNL involves λ and it is not really sensitive to
    // λ" — λ only shaves a few similarity slots off each outer document's
    // memory share.
    let base = JoinInputs::with_paper_q(
        CollectionStats::wsj(),
        CollectionStats::wsj(),
        SystemParams::paper_base(),
        QueryParams::paper_base().with_lambda(1),
    );
    let big_lambda = JoinInputs {
        query: QueryParams::paper_base().with_lambda(100),
        ..base
    };
    let c1 = textjoin::costmodel::hhnl::sequential(&base).unwrap();
    let c100 = textjoin::costmodel::hhnl::sequential(&big_lambda).unwrap();
    assert!(
        (c100 - c1).abs() / c1 < 0.25,
        "λ=1 → {c1}, λ=100 → {c100}: HHNL should be λ-insensitive"
    );
    assert!(c100 >= c1, "more λ slots can only shrink the batch");
}

#[test]
fn backward_order_symmetry_of_inputs() {
    // Swapping the collections (the backward order of section 4.1) swaps
    // the roles in the estimates.
    let i = JoinInputs::with_paper_q(
        CollectionStats::wsj(),
        CollectionStats::doe(),
        SystemParams::paper_base(),
        QueryParams::paper_base(),
    );
    let back = i.swapped();
    assert_eq!(back.inner, i.outer);
    let est_fwd = CostEstimates::compute(&i);
    let est_back = CostEstimates::compute(&back);
    // Different orders genuinely cost differently (asymmetric operator).
    assert_ne!(est_fwd.hhnl_seq, est_back.hhnl_seq);
    assert!(est_fwd
        .cost(Algorithm::Hhnl, IoScenario::Dedicated)
        .is_finite());
}
