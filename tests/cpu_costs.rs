//! CPU-work accounting across algorithms — the paper's future-work item
//! (2) asks for cost formulas that include CPU cost; the executors report
//! the two relevant counters so the section 4.2 claim can be *measured*:
//! "[comparing with each document] requires almost all entries in the
//! document-term matrix be accessed … the inverted file based method
//! accesses only a very small portion of the document-term matrix."

use std::sync::Arc;
use textjoin::core::{hhnl, hvnl, vvm};
use textjoin::prelude::*;
use textjoin::storage::DiskSim;

#[allow(clippy::type_complexity)]
fn fixture() -> (
    Arc<DiskSim>,
    Collection,
    Collection,
    InvertedFile,
    InvertedFile,
) {
    let disk = Arc::new(DiskSim::new(4096));
    // A sparse vocabulary: most document pairs share few terms, so the
    // document-term matrix is mostly zero — the regime the claim is about.
    let c1 = SynthSpec::from_stats(CollectionStats::new(300, 20.0, 5000), 71)
        .generate(Arc::clone(&disk), "c1")
        .unwrap();
    let c2 = SynthSpec::from_stats(CollectionStats::new(150, 20.0, 5000), 72)
        .generate(Arc::clone(&disk), "c2")
        .unwrap();
    let inv1 = InvertedFile::build(Arc::clone(&disk), "c1", &c1).unwrap();
    let inv2 = InvertedFile::build(Arc::clone(&disk), "c2", &c2).unwrap();
    (disk, c1, c2, inv1, inv2)
}

#[test]
fn vertical_algorithms_touch_less_of_the_matrix() {
    let (_disk, c1, c2, inv1, inv2) = fixture();
    let spec = JoinSpec::new(&c1, &c2)
        .with_sys(SystemParams::paper_base().with_buffer_pages(500))
        .with_query(QueryParams {
            lambda: 5,
            delta: 1.0,
        });

    let hh = hhnl::execute(&spec).unwrap();
    let hv = hvnl::execute(&spec, &inv1).unwrap();
    let vv = vvm::execute(&spec, &inv1, &inv2).unwrap();

    // Same answers...
    assert_eq!(hh.result, hv.result);
    assert_eq!(hv.result, vv.result);

    // ...same multiply-adds (every algorithm computes exactly the non-zero
    // term-pair products)...
    assert_eq!(hh.stats.sim_ops, hv.stats.sim_ops);
    assert_eq!(hv.stats.sim_ops, vv.stats.sim_ops);
    assert!(hh.stats.sim_ops > 0);

    // ...but HHNL walks both documents of every pair, so it visits far
    // more cells than the matches it finds, while the vertical methods
    // visit only non-zero postings.
    assert_eq!(hv.stats.cells_touched, hv.stats.sim_ops);
    assert_eq!(vv.stats.cells_touched, vv.stats.sim_ops);
    assert!(
        hh.stats.cells_touched > 10 * hh.stats.sim_ops,
        "HHNL visited {} cells for {} matches — expected a sparse matrix",
        hh.stats.cells_touched,
        hh.stats.sim_ops
    );
    assert!(hh.stats.cells_touched > 5 * hv.stats.cells_touched);
}

#[test]
fn hhnl_cell_visits_scale_with_the_full_matrix() {
    let (_disk, c1, c2, _, _) = fixture();
    let spec = JoinSpec::new(&c1, &c2)
        .with_sys(SystemParams::paper_base().with_buffer_pages(500))
        .with_query(QueryParams {
            lambda: 5,
            delta: 1.0,
        });
    let hh = hhnl::execute(&spec).unwrap();
    // Each of the 300×150 pairs merges two ~20-cell documents: the visit
    // count is within a small factor of N1·N2·K.
    let pairs = 300u64 * 150;
    assert!(hh.stats.cells_touched >= pairs * 10);
    assert!(hh.stats.cells_touched <= pairs * 80);
}
