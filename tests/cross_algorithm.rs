//! The central invariant of the reproduction: HHNL, HVNL and VVM are three
//! evaluation strategies for the *same* operator, so on identical inputs
//! they must produce identical results — and all must agree with the naive
//! in-memory reference scorer.

use proptest::prelude::*;
use std::sync::Arc;
use textjoin::core::{hhnl, hvnl, reference, vvm};
use textjoin::prelude::*;
use textjoin::storage::DiskSim;

#[allow(clippy::type_complexity)]
fn build(
    n1: u64,
    n2: u64,
    k: f64,
    vocab: u64,
    seed: u64,
) -> (
    Arc<DiskSim>,
    Collection,
    Collection,
    InvertedFile,
    InvertedFile,
    Vec<Document>,
    Vec<Document>,
) {
    let disk = Arc::new(DiskSim::new(512));
    let d1 = SynthSpec::from_stats(CollectionStats::new(n1, k, vocab), seed).generate_docs();
    let d2 = SynthSpec::from_stats(CollectionStats::new(n2, k, vocab), seed + 1).generate_docs();
    let c1 = Collection::build(Arc::clone(&disk), "c1", d1.clone()).unwrap();
    let c2 = Collection::build(Arc::clone(&disk), "c2", d2.clone()).unwrap();
    let inv1 = InvertedFile::build(Arc::clone(&disk), "c1", &c1).unwrap();
    let inv2 = InvertedFile::build(Arc::clone(&disk), "c2", &c2).unwrap();
    (disk, c1, c2, inv1, inv2, d1, d2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random collection shapes, λ and buffer sizes: exact agreement of all
    /// three executors and the reference under the raw-count similarity.
    #[test]
    fn prop_three_algorithms_agree(
        n1 in 1u64..40,
        n2 in 1u64..30,
        k in 3u64..25,
        vocab in 20u64..200,
        lambda in 1usize..8,
        buffer_pages in 24u64..200,
        seed in 0u64..1000,
    ) {
        let (_disk, c1, c2, inv1, inv2, d1, d2) = build(n1, n2, k as f64, vocab, seed);
        let spec = JoinSpec::new(&c1, &c2)
            .with_sys(SystemParams { buffer_pages, page_size: 512, alpha: 5.0 })
            .with_query(QueryParams { lambda, delta: 1.0 });

        let want = reference::naive_join(&d1, &d2, OuterDocs::Full, lambda, Weighting::RawCount);
        let hh = hhnl::execute(&spec).unwrap();
        prop_assert_eq!(&hh.result, &want, "HHNL disagrees with reference");
        let hv = hvnl::execute(&spec, &inv1).unwrap();
        prop_assert_eq!(&hv.result, &want, "HVNL disagrees with reference");
        let vv = vvm::execute(&spec, &inv1, &inv2).unwrap();
        prop_assert_eq!(&vv.result, &want, "VVM disagrees with reference");

        // Budget compliance: no executor may exceed B·P bytes.
        let budget = spec.sys.buffer_bytes();
        prop_assert!(hh.stats.mem_high_water_bytes <= budget);
        prop_assert!(hv.stats.mem_high_water_bytes <= budget);
        prop_assert!(vv.stats.mem_high_water_bytes <= budget);
    }

    /// Same agreement with an outer-side selection (group 3 semantics) and
    /// an inner-side filter (selection on the inner relation).
    #[test]
    fn prop_agreement_under_selections(
        n1 in 4u64..30,
        n2 in 4u64..25,
        k in 3u64..15,
        vocab in 20u64..120,
        lambda in 1usize..5,
        seed in 0u64..1000,
        outer_pick in prop::collection::btree_set(0u32..25, 1..6),
        inner_pick in prop::collection::btree_set(0u32..30, 1..8),
    ) {
        let (_disk, c1, c2, inv1, inv2, d1, d2) = build(n1, n2, k as f64, vocab, seed);
        let outer_ids: Vec<DocId> = outer_pick
            .into_iter()
            .filter(|&i| (i as u64) < n2)
            .map(DocId::new)
            .collect();
        let inner_ids: Vec<DocId> = inner_pick
            .into_iter()
            .filter(|&i| (i as u64) < n1)
            .map(DocId::new)
            .collect();
        prop_assume!(!outer_ids.is_empty() && !inner_ids.is_empty());

        let spec = JoinSpec::new(&c1, &c2)
            .with_outer_docs(OuterDocs::Selected(&outer_ids))
            .with_inner_docs(&inner_ids)
            .with_sys(SystemParams { buffer_pages: 100, page_size: 512, alpha: 5.0 })
            .with_query(QueryParams { lambda, delta: 1.0 });

        let want = reference::naive_join_filtered(
            &d1,
            &d2,
            OuterDocs::Selected(&outer_ids),
            Some(&inner_ids),
            lambda,
            Weighting::RawCount,
        );
        prop_assert_eq!(&hhnl::execute(&spec).unwrap().result, &want);
        prop_assert_eq!(&hvnl::execute(&spec, &inv1).unwrap().result, &want);
        prop_assert_eq!(&vvm::execute(&spec, &inv1, &inv2).unwrap().result, &want);
    }

    /// Cosine scores: exact agreement (a single division of an exact
    /// integer sum cannot depend on the algorithm).
    #[test]
    fn prop_cosine_agreement(
        n1 in 2u64..20,
        n2 in 2u64..15,
        seed in 0u64..500,
    ) {
        let (_disk, c1, c2, inv1, inv2, d1, d2) = build(n1, n2, 8.0, 60, seed);
        let spec = JoinSpec::new(&c1, &c2)
            .with_weighting(Weighting::Cosine)
            .with_sys(SystemParams { buffer_pages: 100, page_size: 512, alpha: 5.0 })
            .with_query(QueryParams { lambda: 4, delta: 1.0 });
        let want = reference::naive_join(&d1, &d2, OuterDocs::Full, 4, Weighting::Cosine);
        prop_assert!(hhnl::execute(&spec).unwrap().result.approx_eq(&want, 1e-12));
        prop_assert!(hvnl::execute(&spec, &inv1).unwrap().result.approx_eq(&want, 1e-12));
        prop_assert!(vvm::execute(&spec, &inv1, &inv2).unwrap().result.approx_eq(&want, 1e-12));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every execution path — forward, backward and parallel HHNL, HVNL
    /// over either posting codec, VVM over either codec — agrees with the
    /// reference.
    #[test]
    fn prop_all_execution_paths_agree(
        n1 in 2u64..30,
        n2 in 2u64..20,
        k in 3u64..15,
        vocab in 20u64..150,
        lambda in 1usize..6,
        workers in 1usize..5,
        seed in 0u64..1000,
    ) {
        use textjoin::core::parallel;
        use textjoin::invfile::PostingCodec;

        let disk = Arc::new(DiskSim::new(512));
        let d1 =
            SynthSpec::from_stats(CollectionStats::new(n1, k as f64, vocab), seed).generate_docs();
        let d2 = SynthSpec::from_stats(CollectionStats::new(n2, k as f64, vocab), seed + 1)
            .generate_docs();
        let c1 = Collection::build(Arc::clone(&disk), "c1", d1.clone()).unwrap();
        let c2 = Collection::build(Arc::clone(&disk), "c2", d2.clone()).unwrap();
        let spec = JoinSpec::new(&c1, &c2)
            .with_sys(SystemParams { buffer_pages: 120, page_size: 512, alpha: 5.0 })
            .with_query(QueryParams { lambda, delta: 1.0 });
        let want = reference::naive_join(&d1, &d2, OuterDocs::Full, lambda, Weighting::RawCount);

        prop_assert_eq!(&hhnl::execute(&spec).unwrap().result, &want);
        prop_assert_eq!(&hhnl::execute_backward(&spec).unwrap().result, &want);
        prop_assert_eq!(&parallel::execute_hhnl(&spec, workers).unwrap().result, &want);
        for codec in [PostingCodec::Fixed5, PostingCodec::VarintGap] {
            let tag = format!("{codec:?}");
            let inv1 = InvertedFile::build_with(
                Arc::clone(&disk),
                &format!("c1-{tag}"),
                &c1,
                codec,
            )
            .unwrap();
            let inv2 = InvertedFile::build_with(
                Arc::clone(&disk),
                &format!("c2-{tag}"),
                &c2,
                codec,
            )
            .unwrap();
            prop_assert_eq!(&hvnl::execute(&spec, &inv1).unwrap().result, &want, "{:?}", codec);
            prop_assert_eq!(
                &vvm::execute(&spec, &inv1, &inv2).unwrap().result,
                &want,
                "{:?}",
                codec
            );
        }
    }

    /// Self-joins with self-pair exclusion (clustering mode) agree across
    /// all three algorithms and never match a document to itself.
    #[test]
    fn prop_self_join_excludes_self_pairs(
        n in 2u64..25,
        k in 3u64..12,
        vocab in 15u64..100,
        lambda in 1usize..5,
        seed in 0u64..500,
    ) {
        let disk = Arc::new(DiskSim::new(512));
        let docs =
            SynthSpec::from_stats(CollectionStats::new(n, k as f64, vocab), seed).generate_docs();
        let c = Collection::build(Arc::clone(&disk), "c", docs.clone()).unwrap();
        let inv = InvertedFile::build(Arc::clone(&disk), "c", &c).unwrap();
        let spec = JoinSpec::new(&c, &c)
            .with_sys(SystemParams { buffer_pages: 120, page_size: 512, alpha: 5.0 })
            .with_query(QueryParams { lambda, delta: 1.0 })
            .with_exclude_self();
        let want = reference::naive_join_full(
            &docs,
            &docs,
            OuterDocs::Full,
            None,
            lambda,
            Weighting::RawCount,
            true,
        );
        let hh = hhnl::execute(&spec).unwrap();
        prop_assert_eq!(&hh.result, &want);
        prop_assert_eq!(&hvnl::execute(&spec, &inv).unwrap().result, &want);
        prop_assert_eq!(&vvm::execute(&spec, &inv, &inv).unwrap().result, &want);
        for (outer, matches) in hh.result.iter() {
            prop_assert!(matches.iter().all(|m| m.inner != outer));
        }
    }
}

/// The integrated dispatcher agrees with whatever algorithm it picks, on a
/// fixed non-trivial workload.
#[test]
fn integrated_agrees_with_reference() {
    let (_disk, c1, c2, inv1, inv2, d1, d2) = build(60, 40, 12.0, 300, 7);
    let spec = JoinSpec::new(&c1, &c2)
        .with_sys(SystemParams {
            buffer_pages: 64,
            page_size: 512,
            alpha: 5.0,
        })
        .with_query(QueryParams {
            lambda: 5,
            delta: 1.0,
        });
    let got = integrated::execute(&spec, &inv1, &inv2, IoScenario::Dedicated).unwrap();
    let want = reference::naive_join(&d1, &d2, OuterDocs::Full, 5, Weighting::RawCount);
    assert_eq!(got.outcome.result, want);
}
