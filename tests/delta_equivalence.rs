//! Property: the base+delta read path is indistinguishable from a rebuild.
//!
//! For any interleaving of inserts, deletes, flushes and merges applied to
//! a [`LiveCollection`], every join algorithm running over the live base
//! plus its delta overlay must return results *byte-identical* to the same
//! algorithm running over a from-scratch collection rebuilt from the
//! current live documents (same sparse ids, fresh inverted file). Raw-count
//! weighting keeps scores integer-valued and independent of the collection
//! profile, so "identical" really means bit-equal scores, not approximately
//! equal ones.
//!
//! A second property covers the degraded read path: with a bit flipped in
//! a flushed delta side file, strict mode surfaces a typed error while
//! degraded mode completes on all three algorithms with consistent
//! partial-result accounting — never a panic, never a silent wrong answer.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::Arc;
use textjoin::collection::{
    Collection, CollectionProfile, Document, DocumentStoreBuilder, SynthSpec,
};
use textjoin::common::{CollectionStats, DocId, Error, QueryParams, Result, SystemParams};
use textjoin::core::{hhnl, hvnl, vvm, JoinResult, JoinSpec, ResultQuality, Weighting};
use textjoin::invfile::InvertedFile;
use textjoin::live::LiveCollection;
use textjoin::storage::DiskSim;

const PAGE: usize = 128;

/// One step of an interleaved mutation schedule.
#[derive(Clone, Debug)]
enum Op {
    /// Insert a synthetic document derived from the seed.
    Insert(u64),
    /// Delete the `i % live`-th live document (no-op when empty).
    Delete(u8),
    /// Flush the in-memory tail to packed side files.
    Flush,
    /// Merge base and delta into the next generation.
    Merge,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof is unweighted; repeating the mutation arms
    // biases schedules toward inserts/deletes over flushes/merges.
    prop_oneof![
        (0u64..1_000_000).prop_map(Op::Insert),
        (1_000_000u64..2_000_000).prop_map(Op::Insert),
        (0u8..128).prop_map(Op::Delete),
        (128u8..=255).prop_map(Op::Delete),
        Just(Op::Flush),
        Just(Op::Merge),
    ]
}

fn apply(lc: &mut LiveCollection, op: &Op) -> Result<()> {
    match op {
        Op::Insert(seed) => {
            let doc = SynthSpec::from_stats(CollectionStats::new(1, 8.0, 60), *seed)
                .generate_docs()
                .remove(0);
            lc.insert(doc)?;
        }
        Op::Delete(i) => {
            let ids = lc.live_ids();
            if !ids.is_empty() {
                lc.delete(ids[*i as usize % ids.len()])?;
            }
        }
        Op::Flush => lc.flush()?,
        Op::Merge => lc.merge()?,
    }
    Ok(())
}

/// The current live documents, `(id, doc)` ascending.
fn live_contents(lc: &LiveCollection) -> Result<Vec<(DocId, Document)>> {
    let mut out = Vec::new();
    for item in lc.base().store().scan() {
        let (id, doc) = item?;
        if !lc.overlay().is_deleted(id) {
            out.push((id, doc));
        }
    }
    out.extend(lc.overlay().live_docs()?);
    Ok(out)
}

/// Rebuilds a bulk collection holding exactly `docs`, preserving the
/// original (possibly sparse) document ids, with a fresh inverted file.
fn rebuild(
    disk: &Arc<DiskSim>,
    name: &str,
    docs: &[(DocId, Document)],
) -> Result<(Collection, InvertedFile)> {
    let mut builder = DocumentStoreBuilder::new(Arc::clone(disk), &format!("{name}.docs"))?;
    let mut profiler = CollectionProfile::builder();
    for (id, doc) in docs {
        builder.add_with_id(*id, doc)?;
        profiler.observe_at(*id, doc);
    }
    let collection = Collection::from_store(name, builder.finish()?, profiler.finish());
    let inv = InvertedFile::build(Arc::clone(disk), name, &collection)?;
    Ok((collection, inv))
}

fn spec<'a>(inner: &'a Collection, outer: &'a Collection) -> JoinSpec<'a> {
    JoinSpec::new(inner, outer)
        .with_sys(SystemParams {
            buffer_pages: 400,
            page_size: PAGE,
            alpha: 5.0,
        })
        .with_query(QueryParams {
            lambda: 3,
            delta: 1.0,
        })
        .with_weighting(Weighting::RawCount)
}

/// All three algorithms over one spec.
fn all_joins(
    spec: &JoinSpec<'_>,
    inner_inv: &InvertedFile,
    outer_inv: &InvertedFile,
) -> Result<[JoinResult; 3]> {
    Ok([
        hhnl::execute(spec)?.result,
        hvnl::execute(spec, inner_inv)?.result,
        vvm::execute(spec, inner_inv, outer_inv)?.result,
    ])
}

fn fixture(disk: &Arc<DiskSim>, seed: u64) -> Result<(LiveCollection, Collection, InvertedFile)> {
    let base = SynthSpec::from_stats(CollectionStats::new(20, 8.0, 60), seed).generate_docs();
    let lc = LiveCollection::create(Arc::clone(disk), "live", base)?;
    let outer = SynthSpec::from_stats(CollectionStats::new(12, 8.0, 60), seed ^ 0x5eed)
        .generate(Arc::clone(disk), "outer")?;
    let outer_inv = InvertedFile::build(Arc::clone(disk), "outer", &outer)?;
    Ok((lc, outer, outer_inv))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    /// The headline property: base+delta ≡ rebuilt collection, for every
    /// algorithm, at every point of the mutation/merge interleaving.
    #[test]
    fn base_plus_delta_equals_rebuilt_collection(
        seed in 0u64..1000,
        ops in prop::collection::vec(op_strategy(), 0..12),
    ) {
        let disk = Arc::new(DiskSim::new(PAGE));
        let (mut lc, outer, outer_inv) = fixture(&disk, seed).unwrap();
        for (step, op) in ops.iter().enumerate() {
            apply(&mut lc, op).unwrap();

            let docs = live_contents(&lc).unwrap();
            let (rebuilt, rebuilt_inv) =
                rebuild(&disk, &format!("rebuilt{step}"), &docs).unwrap();

            let live_spec = spec(lc.base(), &outer).with_inner_delta(lc.overlay());
            let live = all_joins(&live_spec, lc.base_inv(), &outer_inv).unwrap();
            let reference =
                all_joins(&spec(&rebuilt, &outer), &rebuilt_inv, &outer_inv).unwrap();
            for (alg, (got, want)) in ["HHNL", "HVNL", "VVM"]
                .iter()
                .zip(live.iter().zip(&reference))
            {
                prop_assert_eq!(
                    got, want,
                    "step {} ({:?}): {} over base+delta diverges from the rebuild",
                    step, op, alg
                );
            }
        }
    }

    /// The degraded property: a flipped bit in a flushed delta side file is
    /// a typed error in strict mode and counted skips in degraded mode.
    #[test]
    fn bit_flipped_delta_degrades_without_panicking(seed in 0u64..1000) {
        let disk = Arc::new(DiskSim::new(PAGE));
        let (mut lc, outer, outer_inv) = fixture(&disk, seed).unwrap();
        for i in 0..5 {
            apply(&mut lc, &Op::Insert(seed.wrapping_add(i))).unwrap();
        }
        apply(&mut lc, &Op::Delete(3)).unwrap();
        apply(&mut lc, &Op::Flush).unwrap();
        for suffix in ["docs", "inv"] {
            let file = disk
                .file_by_name(&format!("live.g0.f1.{suffix}"))
                .expect("flushed side file");
            disk.flip_bit(file, seed % disk.num_pages(file).max(1), seed % (8 * PAGE as u64))
                .unwrap();
        }

        let strict = spec(lc.base(), &outer).with_inner_delta(lc.overlay());
        prop_assert!(matches!(
            hhnl::execute(&strict),
            Err(Error::Corrupt(_) | Error::Io { .. })
        ));

        let degraded = strict.with_degraded();
        let attempts = [
            hhnl::execute(&degraded),
            hvnl::execute(&degraded, lc.base_inv()),
            vvm::execute(&degraded, lc.base_inv(), &outer_inv),
        ];
        let mut skipped_somewhere = false;
        for attempt in attempts {
            match attempt {
                Ok(outcome) => {
                    let skips = outcome.stats.skipped_docs + outcome.stats.skipped_entries;
                    skipped_somewhere |= skips > 0;
                    prop_assert_eq!(outcome.quality, outcome.stats.quality());
                    prop_assert_eq!(outcome.quality == ResultQuality::Partial, skips > 0);
                }
                // A flip in a structural page (store directory) may be
                // unroutable even in degraded mode — but only as a typed
                // error, never a panic.
                Err(Error::Corrupt(_) | Error::Io { .. }) => {}
                Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
            }
        }
        prop_assert!(skipped_somewhere, "no degraded run counted a skip");
    }
}

/// A fixed smoke case pinning one nontrivial interleaving (insert → delete
/// → flush → insert → merge → insert → delete) so the property holds even
/// if proptest's sampling is unlucky.
#[test]
fn pinned_interleaving_matches_rebuild() {
    let disk = Arc::new(DiskSim::new(PAGE));
    let (mut lc, outer, outer_inv) = fixture(&disk, 7).unwrap();
    let schedule = [
        Op::Insert(101),
        Op::Insert(102),
        Op::Delete(0),
        Op::Flush,
        Op::Insert(103),
        Op::Merge,
        Op::Insert(104),
        Op::Delete(5),
    ];
    for op in &schedule {
        apply(&mut lc, op).unwrap();
    }
    assert!(lc.generation() >= 1, "merge advanced the generation");

    let docs = live_contents(&lc).unwrap();
    let (rebuilt, rebuilt_inv) = rebuild(&disk, "rebuilt", &docs).unwrap();
    let live_spec = spec(lc.base(), &outer).with_inner_delta(lc.overlay());
    let live = all_joins(&live_spec, lc.base_inv(), &outer_inv).unwrap();
    let reference = all_joins(&spec(&rebuilt, &outer), &rebuilt_inv, &outer_inv).unwrap();
    assert_eq!(live, reference);
}
