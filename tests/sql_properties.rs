//! Property tests over the extended-SQL layer: random catalogs and
//! queries, checked against semantics computed directly from the rows.

use proptest::prelude::*;
use std::sync::Arc;
use textjoin::prelude::*;
use textjoin::query::{parse, run_query};
use textjoin::storage::DiskSim;

/// A tiny vocabulary so documents overlap often.
const WORDS: [&str; 12] = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india", "juliet",
    "kilo", "lima",
];

fn text_from(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| WORDS[i % WORDS.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

fn arb_texts(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<usize>>> {
    proptest::collection::vec(proptest::collection::vec(0usize..WORDS.len(), 1..10), n)
}

fn build_catalog(left: &[Vec<usize>], right: &[Vec<usize>]) -> Catalog {
    let disk = Arc::new(DiskSim::new(4096));
    let mut catalog = Catalog::new(disk);
    let mut l = RelationBuilder::new("L")
        .column("id", ColumnType::Int)
        .column("score", ColumnType::Int)
        .column("body", ColumnType::Text);
    for (i, t) in left.iter().enumerate() {
        l = l
            .row(vec![
                Value::Int(i as i64),
                Value::Int((i % 7) as i64),
                Value::Text(text_from(t)),
            ])
            .unwrap();
    }
    catalog.add(l).unwrap();
    let mut r = RelationBuilder::new("R")
        .column("id", ColumnType::Int)
        .column("body", ColumnType::Text);
    for (i, t) in right.iter().enumerate() {
        r = r
            .row(vec![Value::Int(i as i64), Value::Text(text_from(t))])
            .unwrap();
    }
    catalog.add(r).unwrap();
    catalog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// λ bounds the number of result rows per outer row, similarities are
    /// positive and non-increasing per outer row, and every id is in range.
    #[test]
    fn query_results_are_well_formed(
        left in arb_texts(1..12),
        right in arb_texts(1..8),
        lambda in 1usize..5,
    ) {
        let catalog = build_catalog(&left, &right);
        let sql = format!(
            "SELECT R.id, L.id FROM L, R WHERE L.body SIMILAR_TO({lambda}) R.body"
        );
        let out = run_query(
            &catalog,
            &sql,
            SystemParams::paper_base(),
            QueryParams::paper_base(),
            IoScenario::Dedicated,
        )
        .unwrap();

        let mut per_outer: std::collections::HashMap<i64, Vec<f64>> =
            std::collections::HashMap::new();
        for row in &out.rows {
            let (Value::Int(rid), Value::Int(lid)) = (&row[0], &row[1]) else {
                panic!("ids must be ints: {row:?}");
            };
            prop_assert!((*rid as usize) < right.len());
            prop_assert!((*lid as usize) < left.len());
            let sim = match row.last().unwrap() {
                Value::Int(s) => *s as f64,
                Value::Float(s) => *s,
                other => panic!("similarity must be numeric: {other:?}"),
            };
            prop_assert!(sim > 0.0, "zero-similarity pairs must not be reported");
            per_outer.entry(*rid).or_default().push(sim);
        }
        for (rid, sims) in &per_outer {
            prop_assert!(sims.len() <= lambda, "outer row {rid} got {} rows", sims.len());
            prop_assert!(
                sims.windows(2).all(|w| w[0] >= w[1]),
                "matches for {rid} not best-first: {sims:?}"
            );
        }
    }

    /// A selection on the outer relation is equivalent to deleting the
    /// filtered rows before the join.
    #[test]
    fn outer_selection_equals_prefiltering(
        left in arb_texts(1..10),
        right in arb_texts(2..8),
        cutoff in 0i64..8,
    ) {
        let catalog = build_catalog(&left, &right);
        let selected = format!(
            "SELECT R.id, L.id FROM L, R WHERE R.id < {cutoff} \
             AND L.body SIMILAR_TO(2) R.body"
        );
        let out_selected = run_query(
            &catalog,
            &selected,
            SystemParams::paper_base(),
            QueryParams::paper_base(),
            IoScenario::Dedicated,
        )
        .unwrap();

        // Build a second catalog containing only the surviving outer rows,
        // but renumber-safe: compare (outer text, inner id) multisets.
        let kept: Vec<Vec<usize>> =
            right.iter().take(cutoff.max(0) as usize).cloned().collect();
        if kept.is_empty() {
            prop_assert!(out_selected.rows.is_empty());
            return Ok(());
        }
        let catalog2 = build_catalog(&left, &kept);
        let out_pref = run_query(
            &catalog2,
            "SELECT R.id, L.id FROM L, R WHERE L.body SIMILAR_TO(2) R.body",
            SystemParams::paper_base(),
            QueryParams::paper_base(),
            IoScenario::Dedicated,
        )
        .unwrap();
        let norm = |rows: &[Vec<Value>]| {
            let mut v: Vec<(String, String, String)> = rows
                .iter()
                .map(|r| (r[0].to_string(), r[1].to_string(), r.last().unwrap().to_string()))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(norm(&out_selected.rows), norm(&out_pref.rows));
    }

    /// Parsing is insensitive to extra whitespace and keyword case.
    #[test]
    fn parser_is_whitespace_and_case_insensitive(
        spaces in proptest::collection::vec(1usize..4, 8),
        lambda in 1usize..100,
    ) {
        let pad = |i: usize| " ".repeat(spaces[i % spaces.len()]);
        let sql = format!(
            "select{}a.x,{}b.y{}FROM{}t1 a,{}t2 b{}WhErE{}a.x SIMILAR_TO({lambda}){}b.y",
            pad(0), pad(1), pad(2), pad(3), pad(4), pad(5), pad(6), pad(7)
        );
        let q = parse(&sql).unwrap();
        prop_assert_eq!(q.select.len(), 2);
        let (_, _, l) = q.similar_to().unwrap();
        prop_assert_eq!(l, lambda);
    }
}
