//! End-to-end tests of the live introspection layer: in-flight tickets
//! with monotone progress, cooperative cancellation observed within one
//! checkpoint, the query-layer registration path, and the embedded scrape
//! endpoint agreeing with the registry it serves.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use textjoin::core::ResultQuality;
use textjoin::costmodel;
use textjoin::obs::{IntrospectionServer, LiveRegistry, Registry};
use textjoin::prelude::*;
use textjoin::query::run_query_introspected;
use textjoin::sim::live::{http_get, parse_queries};

struct Fixture {
    _disk: Arc<DiskSim>,
    c1: Collection,
    c2: Collection,
    inv1: InvertedFile,
    inv2: InvertedFile,
    sys: textjoin::common::SystemParams,
}

/// Small pages + a small buffer force every algorithm through several
/// passes/rounds, i.e. several cooperative checkpoints per run.
fn fixture(seed: u64) -> Fixture {
    let sys = textjoin::common::SystemParams {
        buffer_pages: 24,
        page_size: 256,
        alpha: 5.0,
    };
    let disk = Arc::new(DiskSim::new(sys.page_size));
    let c1 = SynthSpec::from_stats(CollectionStats::new(150, 12.0, 300), seed)
        .generate(Arc::clone(&disk), "c1")
        .unwrap();
    let c2 = SynthSpec::from_stats(CollectionStats::new(200, 12.0, 300), seed + 1)
        .generate(Arc::clone(&disk), "c2")
        .unwrap();
    let inv1 = InvertedFile::build(Arc::clone(&disk), "c1", &c1).unwrap();
    let inv2 = InvertedFile::build(Arc::clone(&disk), "c2", &c2).unwrap();
    Fixture {
        _disk: disk,
        c1,
        c2,
        inv1,
        inv2,
        sys,
    }
}

fn run(f: &Fixture, alg: Algorithm, spec: &JoinSpec<'_>) -> JoinOutcome {
    match alg {
        Algorithm::Hhnl => textjoin::core::hhnl::execute(spec).unwrap(),
        Algorithm::Hvnl => textjoin::core::hvnl::execute(spec, &f.inv1).unwrap(),
        Algorithm::Vvm => textjoin::core::vvm::execute(spec, &f.inv1, &f.inv2).unwrap(),
    }
}

fn predicted(spec: &JoinSpec<'_>, alg: Algorithm) -> Option<f64> {
    let inputs = spec.cost_inputs();
    match alg {
        Algorithm::Hhnl => costmodel::hhnl::sequential(&inputs).ok(),
        Algorithm::Hvnl => Some(costmodel::hvnl::sequential(&inputs)),
        Algorithm::Vvm => costmodel::vvm::sequential(&inputs).ok(),
    }
    .filter(|p| p.is_finite() && *p > 0.0)
}

/// A watcher thread samples the ticket while the join runs on the test
/// thread. Whatever the interleaving, the sampled pages and progress
/// sequences must be monotone non-decreasing and progress stays in
/// `[0, 1]` — for all three algorithms.
#[test]
fn progress_is_monotone_under_a_live_watcher() {
    let f = fixture(7);
    for alg in Algorithm::ALL {
        let live = LiveRegistry::new();
        let spec = JoinSpec::new(&f.c1, &f.c2)
            .with_sys(f.sys)
            .with_query(QueryParams::paper_base().with_lambda(3));
        let guard = live.register(
            "watched",
            "c1 ⋈ c2",
            alg.to_string(),
            predicted(&spec, alg),
            None,
            1,
        );
        let spec = spec
            .with_ticket(guard.ticket())
            .with_cancel(guard.ticket().cancel_token());

        let done = Arc::new(AtomicBool::new(false));
        let watcher = {
            let ticket = guard.ticket().clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut samples = Vec::new();
                while !done.load(Ordering::Acquire) {
                    samples.push(ticket.snapshot());
                    std::thread::yield_now();
                }
                samples.push(ticket.snapshot());
                samples
            })
        };
        let outcome = run(&f, alg, &spec);
        done.store(true, Ordering::Release);
        let samples = watcher.join().unwrap();

        assert_eq!(outcome.quality, ResultQuality::Full, "{alg}");
        let last = samples.last().unwrap();
        assert!(last.pages > 0.0, "{alg}: ticket saw no pages");
        let progress = last.progress.expect("predicted pages were provided");
        assert!(progress > 0.0, "{alg}: progress stuck at zero");
        for w in samples.windows(2) {
            assert!(
                w[1].pages >= w[0].pages,
                "{alg}: pages regressed {} -> {}",
                w[0].pages,
                w[1].pages
            );
            let (a, b) = (w[0].progress.unwrap_or(0.0), w[1].progress.unwrap_or(0.0));
            assert!(b >= a, "{alg}: progress regressed {a} -> {b}");
            assert!((0.0..=1.0).contains(&b), "{alg}: progress {b} out of range");
        }
        drop(guard);
        assert!(live.is_empty(), "{alg}: guard drop must deregister");
    }
}

/// A token set before the run starts is observed at the very first
/// cooperative checkpoint: every algorithm returns `Partial` having done
/// at most one checkpoint interval's work, with stats that account for
/// exactly the pages the ticket saw.
#[test]
fn preset_cancel_is_observed_within_one_checkpoint() {
    let f = fixture(11);
    for alg in Algorithm::ALL {
        let live = LiveRegistry::new();
        let base = JoinSpec::new(&f.c1, &f.c2)
            .with_sys(f.sys)
            .with_query(QueryParams::paper_base().with_lambda(3));
        let clean = run(&f, alg, &base);
        assert_eq!(clean.quality, ResultQuality::Full);

        let guard = live.register(
            "cancelled",
            "c1 ⋈ c2",
            alg.to_string(),
            predicted(&base, alg),
            None,
            1,
        );
        guard.ticket().cancel_token().cancel();
        let spec = base
            .with_ticket(guard.ticket())
            .with_cancel(guard.ticket().cancel_token());
        let outcome = run(&f, alg, &spec);

        assert_eq!(
            outcome.quality,
            ResultQuality::Partial,
            "{alg}: pre-set cancel must surface as a Partial result"
        );
        assert!(
            outcome.stats.cost < clean.stats.cost,
            "{alg}: cancelled run cost {} not below clean {}",
            outcome.stats.cost,
            clean.stats.cost
        );
        assert!(
            outcome.result.num_outer_docs() <= clean.result.num_outer_docs(),
            "{alg}: partial result larger than the full one"
        );
        // The ticket's accumulated pages match the run's own accounting
        // (both derive from the same thread-local I/O tally).
        let ticket_pages = guard.ticket().pages();
        assert!(
            (ticket_pages - outcome.stats.cost).abs() <= 1.0,
            "{alg}: ticket saw {ticket_pages} pages, stats say {}",
            outcome.stats.cost
        );
    }
}

/// The SQL layer registers a ticket per query, reports Full on a clean
/// run, and the registry is empty again afterwards (RAII deregistration).
#[test]
fn query_layer_registers_and_deregisters() {
    let disk = Arc::new(DiskSim::new(4096));
    let mut catalog = Catalog::new(disk);
    catalog
        .add(
            RelationBuilder::new("Positions")
                .column("P#", ColumnType::Int)
                .column("Job_descr", ColumnType::Text)
                .row(vec![
                    Value::Int(1),
                    Value::Text("query engines, storage systems, indexes".into()),
                ])
                .unwrap(),
        )
        .unwrap();
    catalog
        .add(
            RelationBuilder::new("Applicants")
                .column("Name", ColumnType::Str)
                .column("Resume", ColumnType::Text)
                .row(vec![
                    Value::Str("Ada".into()),
                    Value::Text("storage systems and query engines expert".into()),
                ])
                .unwrap()
                .row(vec![
                    Value::Str("Bob".into()),
                    Value::Text("pasta, recipes, kitchens".into()),
                ])
                .unwrap(),
        )
        .unwrap();

    let live = LiveRegistry::new();
    let out = run_query_introspected(
        &catalog,
        "Select P.P#, A.Name From Positions P, Applicants A \
         Where A.Resume SIMILAR_TO(1) P.Job_descr",
        textjoin::common::SystemParams::paper_base(),
        QueryParams::paper_base(),
        IoScenario::Dedicated,
        &live,
    )
    .unwrap();
    assert_eq!(out.quality, textjoin::core::ResultQuality::Full);
    assert!(!out.rows.is_empty());
    assert!(live.is_empty(), "finished query must deregister its ticket");
}

/// `GET /metrics` and `GET /queries` agree with the registry objects they
/// serve, field for field.
#[test]
fn scrape_endpoint_agrees_with_registry_snapshots() {
    let registry = Arc::new(Registry::new());
    let live = LiveRegistry::with_metrics(Arc::clone(&registry));
    let g1 = live.register("alpha", "c1 ⋈ c2", "HHNL", Some(100.0), Some(250.0), 2);
    let g2 = live.register("beta", "c1 ⋈ c2", "VVM", None, None, 1);
    g1.ticket().add_pages(40.0);
    g1.ticket().set_phase("hhnl.round 2");
    g2.ticket().cancel_token().cancel();

    let server =
        IntrospectionServer::start("127.0.0.1:0", Arc::clone(&registry), live.clone()).unwrap();
    let addr = server.addr().to_string();

    assert_eq!(http_get(&addr, "/healthz").unwrap(), "ok\n");

    let metrics = http_get(&addr, "/metrics").unwrap();
    assert_eq!(metrics, registry.to_prometheus_text());
    assert!(metrics.contains("queries_inflight 2"), "{metrics}");

    let rows = parse_queries(&http_get(&addr, "/queries").unwrap()).unwrap();
    let snaps = live.snapshot();
    assert_eq!(rows.len(), snaps.len());
    for (row, snap) in rows.iter().zip(&snaps) {
        assert_eq!(row.id, snap.id);
        assert_eq!(row.query, snap.query);
        assert_eq!(row.algorithm, snap.algorithm);
        assert_eq!(row.phase, snap.phase);
        assert!((row.pages - snap.pages).abs() < 1e-6);
        assert_eq!(row.predicted_pages, snap.predicted_pages);
        assert_eq!(row.workers, snap.workers);
        assert_eq!(row.cancelled, snap.cancelled);
    }
    assert_eq!(rows[0].progress, Some(0.4));
    assert_eq!(rows[0].budget_headroom_pages, Some(210.0));
    assert!(rows[1].cancelled);

    // Dropping the guards deregisters: the inflight gauge falls to zero
    // and the cancelled counter counts the one cancelled ticket.
    let body = http_get(&addr, "/queries").unwrap();
    assert!(body.contains("\"cancelled\":true"));
    drop(g1);
    drop(g2);
    let metrics = http_get(&addr, "/metrics").unwrap();
    assert!(metrics.contains("queries_inflight 0"), "{metrics}");
    assert!(metrics.contains("queries_cancelled 1"), "{metrics}");
    server.stop();
}
