//! Model-based property test for the buffer pool: against an arbitrary
//! sequence of page and run requests, the pool must (a) always return the
//! bytes the disk holds, (b) never cache more pages than its capacity, and
//! (c) never re-read a page that was already resident at request time.

use proptest::prelude::*;
use textjoin::storage::{BufferPool, DiskSim};

#[derive(Clone, Debug)]
enum Op {
    Get { page: u64 },
    GetRun { start: u64, len: u64 },
    Clear,
}

fn arb_ops(pages: u64) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0..pages).prop_map(|page| Op::Get { page }),
            (0..pages, 1u64..6).prop_map(move |(start, len)| Op::GetRun {
                start,
                len: len.min(pages - start).max(1),
            }),
            Just(Op::Clear),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pool_matches_its_model(
        pages in 2u64..40,
        capacity in 1usize..12,
        ops in arb_ops(30),
    ) {
        let disk = DiskSim::new(16);
        let file = disk.create_file("f").unwrap();
        for i in 0..pages {
            let mut page = vec![0u8; 16];
            page[0] = i as u8;
            page[1] = (i * 7) as u8;
            disk.append_page(file, &page).unwrap();
        }
        disk.reset_stats();
        disk.reset_head();

        let pool = BufferPool::new(&disk, capacity);
        // Model: the set of pages that must currently be resident is not
        // tracked exactly (LRU order lives in the pool), but residency at
        // request time predicts whether disk reads may happen.
        for op in &ops {
            match op {
                Op::Get { page } => {
                    let page = page % pages;
                    let resident = pool.contains(file, page);
                    let before = disk.stats().total_reads();
                    let data = pool.get(file, page).unwrap();
                    prop_assert_eq!(data[0], page as u8);
                    prop_assert_eq!(data[1], (page * 7) as u8);
                    let after = disk.stats().total_reads();
                    if resident {
                        prop_assert_eq!(after, before, "resident page must not be re-read");
                    } else {
                        prop_assert_eq!(after, before + 1);
                    }
                    prop_assert!(pool.contains(file, page), "page must be cached after get");
                }
                Op::GetRun { start, len } => {
                    let start = start % pages;
                    let len = (*len).min(pages - start).max(1);
                    let missing: u64 = (start..start + len)
                        .filter(|&p| !pool.contains(file, p))
                        .count() as u64;
                    let before = disk.stats().total_reads();
                    let data = pool.get_run(file, start, len).unwrap();
                    for (i, page_bytes) in data.iter().enumerate() {
                        let page = start + i as u64;
                        prop_assert_eq!(page_bytes[0], page as u8);
                    }
                    let after = disk.stats().total_reads();
                    prop_assert_eq!(after - before, missing, "exactly the gaps are read");
                }
                Op::Clear => pool.clear(),
            }
            prop_assert!(pool.len() <= capacity, "capacity exceeded: {}", pool.len());
        }

        // Accounting sanity: hits + misses equals the pages served.
        let stats = pool.stats();
        prop_assert_eq!(stats.misses, disk.stats().total_reads());
    }
}
