//! End-to-end pipeline tests: raw text → term registry → collections →
//! inverted files → extended SQL → result tuples.

use std::sync::Arc;
use textjoin::prelude::*;
use textjoin::query::{parse, plan, run_query};
use textjoin::storage::DiskSim;

fn catalog() -> Catalog {
    let disk = Arc::new(DiskSim::new(4096));
    let mut catalog = Catalog::new(disk);
    let mut positions = RelationBuilder::new("Positions")
        .column("P#", ColumnType::Int)
        .column("Title", ColumnType::Str)
        .column("Job_descr", ColumnType::Text);
    for (pnum, title, descr) in [
        (
            1,
            "Database Engineer",
            "query optimization, indexing, storage engines, join processing",
        ),
        (
            2,
            "IR Engineer",
            "inverted files, text retrieval, ranking, document collections",
        ),
        (3, "Pastry Chef", "baking, pastry, desserts, chocolate work"),
    ] {
        positions = positions
            .row(vec![
                Value::Int(pnum),
                Value::Str(title.into()),
                Value::Text(descr.into()),
            ])
            .unwrap();
    }
    catalog.add(positions).unwrap();

    let mut applicants = RelationBuilder::new("Applicants")
        .column("Name", ColumnType::Str)
        .column("Years", ColumnType::Int)
        .column("Resume", ColumnType::Text);
    for (name, years, resume) in [
        (
            "Ada",
            12,
            "expert in query optimization, join processing and storage engines",
        ),
        (
            "Bea",
            3,
            "text retrieval systems, inverted files, ranking functions",
        ),
        ("Cyd", 8, "chocolate desserts, baking and pastry"),
        ("Dov", 1, "indexing and query optimization internships"),
    ] {
        applicants = applicants
            .row(vec![
                Value::Str(name.into()),
                Value::Int(years),
                Value::Text(resume.into()),
            ])
            .unwrap();
    }
    catalog.add(applicants).unwrap();
    catalog
}

#[test]
fn sql_round_trip_produces_sensible_matches() {
    let c = catalog();
    let out = run_query(
        &c,
        "Select P.Title, A.Name From Positions P, Applicants A \
         Where A.Resume SIMILAR_TO(1) P.Job_descr",
        SystemParams::paper_base(),
        QueryParams::paper_base(),
        IoScenario::Dedicated,
    )
    .unwrap();
    // Best applicant per position.
    let pairs: Vec<(String, String)> = out
        .rows
        .iter()
        .map(|r| (r[0].to_string(), r[1].to_string()))
        .collect();
    assert!(pairs.contains(&("Database Engineer".into(), "Ada".into())));
    assert!(pairs.contains(&("IR Engineer".into(), "Bea".into())));
    assert!(pairs.contains(&("Pastry Chef".into(), "Cyd".into())));
}

#[test]
fn selections_compose_with_the_textual_join() {
    let c = catalog();
    let out = run_query(
        &c,
        "Select P.Title, A.Name From Positions P, Applicants A \
         Where P.Title like '%Engineer%' and A.Years >= 5 \
         and A.Resume SIMILAR_TO(2) P.Job_descr",
        SystemParams::paper_base(),
        QueryParams::paper_base(),
        IoScenario::Dedicated,
    )
    .unwrap();
    for row in &out.rows {
        let title = row[0].to_string();
        let name = row[1].to_string();
        assert!(
            title.contains("Engineer"),
            "selection on title violated: {title}"
        );
        assert!(
            name != "Cyd" && name != "Dov",
            "inner selection violated: {name}"
        );
    }
    assert!(!out.rows.is_empty());
}

#[test]
fn plan_exposes_estimates_and_pushdown() {
    let c = catalog();
    let q = parse(
        "Select A.Name From Positions P, Applicants A \
         Where P.Title like '%Chef%' and A.Resume SIMILAR_TO(1) P.Job_descr",
    )
    .unwrap();
    let p = plan(
        &c,
        &q,
        SystemParams::paper_base(),
        QueryParams::paper_base(),
        IoScenario::Dedicated,
    )
    .unwrap();
    assert_eq!(p.outer_rows.as_deref(), Some(&[DocId::new(2)][..]));
    assert_eq!(p.inputs.outer.num_docs, 1);
    assert!(p
        .estimates
        .cost(p.chosen, IoScenario::Dedicated)
        .is_finite());
}

#[test]
fn standard_term_mapping_aligns_collections() {
    // Section 3: the shared registry gives both relations the same term
    // numbers, so cross-collection similarities are meaningful.
    let c = catalog();
    let positions = c.relation("Positions").unwrap();
    let applicants = c.relation("Applicants").unwrap();
    // "optimization" is stemmed to "optimiz" by the ingestion pipeline;
    // the registry stores stemmed forms.
    let term = c
        .registry()
        .lookup("optimiz")
        .expect("registered stemmed term");
    let p_df = positions
        .text_column("Job_descr")
        .unwrap()
        .collection
        .profile()
        .doc_frequency(term);
    let a_df = applicants
        .text_column("Resume")
        .unwrap()
        .collection
        .profile()
        .doc_frequency(term);
    assert_eq!(p_df, 1); // one job description mentions optimization
    assert_eq!(a_df, 2); // two resumes do
}

#[test]
fn asymmetry_of_similar_to() {
    // "A.Resume SIMILAR_TO(λ) P.Job_descr" and the reverse are different
    // queries (section 2): one produces λ matches per position, the other
    // λ matches per resume.
    let c = catalog();
    let forward = run_query(
        &c,
        "Select P.Title, A.Name From Positions P, Applicants A \
         Where A.Resume SIMILAR_TO(1) P.Job_descr",
        SystemParams::paper_base(),
        QueryParams::paper_base(),
        IoScenario::Dedicated,
    )
    .unwrap();
    let backward = run_query(
        &c,
        "Select P.Title, A.Name From Positions P, Applicants A \
         Where P.Job_descr SIMILAR_TO(1) A.Resume",
        SystemParams::paper_base(),
        QueryParams::paper_base(),
        IoScenario::Dedicated,
    )
    .unwrap();
    assert_eq!(forward.rows.len(), 3, "one row per position");
    assert_eq!(backward.rows.len(), 4, "one row per applicant");
}

#[test]
fn tokenizer_pipeline_feeds_real_text() {
    let mut registry = TermRegistry::new();
    let doc = registry.ingest("Databases, DATABASES, database!");
    assert_eq!(doc.num_terms(), 1, "case folding and stemming conflate");
    let doc2 = registry.ingest_readonly("database");
    assert_eq!(doc.dot(&doc2).value(), 3.0);
}
