//! Failure injection: corrupted on-disk structures and injected disk
//! faults must surface as `Error::Corrupt` / `Error::Io` (or another typed
//! error), never as panics or silently wrong results. Degraded mode turns
//! unreadable pages into counted skips with a `Partial` quality tag, and
//! the integrated algorithm re-plans around storage that dies mid-run.

use proptest::prelude::*;
use std::sync::Arc;
use textjoin::common::Error;
use textjoin::core::{hhnl, hvnl, vvm, ResultQuality};
use textjoin::invfile::BTreeFile;
use textjoin::prelude::*;
use textjoin::storage::{DiskSim, FaultKind, FaultPlan};

fn collection_on(disk: &Arc<DiskSim>) -> Collection {
    SynthSpec::from_stats(CollectionStats::new(40, 12.0, 200), 5)
        .generate(Arc::clone(disk), "c")
        .unwrap()
}

/// A full 256-byte page of one repeated byte — `write_page` insists on
/// exact page-size payloads.
fn page_of(byte: u8) -> Vec<u8> {
    vec![byte; 256]
}

#[test]
fn corrupt_document_page_fails_scan_without_panicking() {
    let disk = Arc::new(DiskSim::new(256));
    let c = collection_on(&disk);
    // Overwrite the first data page with bytes that decode into
    // out-of-order cells.
    let file = c.store().file();
    disk.write_page(file, 0, &page_of(0xFF)).unwrap();

    let outcome: Vec<_> = c.store().scan().collect();
    assert!(
        outcome.iter().any(|r| matches!(r, Err(Error::Corrupt(_)))),
        "scan over a corrupted page must report corruption"
    );
}

#[test]
fn corrupt_document_read_direct_reports_corruption() {
    let disk = Arc::new(DiskSim::new(256));
    let c = collection_on(&disk);
    disk.write_page(c.store().file(), 0, &page_of(0xAB))
        .unwrap();
    let err = c.store().read_doc_direct(DocId::new(0)).unwrap_err();
    assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
}

#[test]
fn corrupt_btree_node_kind_is_reported() {
    let disk = Arc::new(DiskSim::new(256));
    let entries: Vec<_> = (0..200u32)
        .map(|i| {
            (
                TermId::new(i),
                textjoin::invfile::TermEntry {
                    ordinal: i,
                    doc_freq: 1,
                },
            )
        })
        .collect();
    let tree = BTreeFile::bulk_load(Arc::clone(&disk), "bt", &entries).unwrap();
    // Stamp an invalid node kind over page 0 (a leaf).
    let mut page = vec![0u8; 256];
    page[0] = 9; // neither leaf (0) nor internal (1)
    disk.write_page(tree.file(), 0, &page).unwrap();

    // Either the search path or the full load must hit the bad node.
    let search_err = (0..200u32)
        .map(|i| tree.search(TermId::new(i)))
        .find_map(|r| r.err());
    let load_err = tree.load_leaves().err();
    let err = search_err
        .or(load_err)
        .expect("corruption must be detected");
    assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
}

#[test]
fn executor_surfaces_storage_errors_as_results() {
    // A join over a corrupted inner collection returns Err, not panic.
    let disk = Arc::new(DiskSim::new(256));
    let c1 = collection_on(&disk);
    let c2 = SynthSpec::from_stats(CollectionStats::new(10, 12.0, 200), 6)
        .generate(Arc::clone(&disk), "c2")
        .unwrap();
    disk.write_page(c1.store().file(), 1, &page_of(0xEE))
        .unwrap();
    let spec = JoinSpec::new(&c1, &c2).with_sys(SystemParams {
        buffer_pages: 64,
        page_size: 256,
        alpha: 5.0,
    });
    let err = textjoin::core::hhnl::execute(&spec).unwrap_err();
    assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
}

#[test]
fn out_of_bounds_reads_are_typed_errors() {
    let disk = Arc::new(DiskSim::new(256));
    let f = disk.create_file("tiny").unwrap();
    disk.append_page(f, &page_of(1)).unwrap();
    assert!(matches!(
        disk.read_page(f, 5).unwrap_err(),
        Error::PageOutOfBounds { .. }
    ));
    assert!(matches!(
        disk.read_run(f, 0, 9).unwrap_err(),
        Error::PageOutOfBounds { .. }
    ));
    assert!(matches!(
        disk.write_page(f, 7, &page_of(0)).unwrap_err(),
        Error::PageOutOfBounds { .. }
    ));
}

#[test]
fn short_or_oversized_payloads_are_invalid_arguments() {
    let disk = Arc::new(DiskSim::new(256));
    let f = disk.create_file("strict").unwrap();
    disk.append_page(f, &page_of(7)).unwrap();

    // Both entry points, both directions; the message names both sizes so
    // the offending writer is identifiable from the error alone.
    for payload in [vec![1u8, 2, 3], vec![0u8; 255], vec![0u8; 257]] {
        let append_err = disk.append_page(f, &payload).unwrap_err();
        let write_err = disk.write_page(f, 0, &payload).unwrap_err();
        for err in [append_err, write_err] {
            let Error::InvalidArgument(msg) = &err else {
                panic!("expected InvalidArgument, got {err:?}");
            };
            assert!(
                msg.contains(&payload.len().to_string()) && msg.contains("256"),
                "message must name the offending and expected sizes: {msg}"
            );
        }
    }
}

#[test]
fn transient_faults_are_absorbed_by_retries() {
    let disk = Arc::new(DiskSim::new(256));
    let c = collection_on(&disk);
    let file = c.store().file();
    let clean = c.store().read_doc_direct(DocId::new(0)).unwrap();

    // Two failures fit inside the default three-attempt policy.
    disk.set_fault_plan(FaultPlan::new().with_fault(
        file,
        0,
        0,
        FaultKind::TransientRead { failures: 2 },
    ));
    disk.reset_fault_stats();
    let read = c.store().read_doc_direct(DocId::new(0)).unwrap();
    assert_eq!(read, clean, "an absorbed fault must not change the data");

    let stats = disk.fault_stats();
    assert!(stats.retries >= 2, "retries must be counted: {stats:?}");
    assert_eq!(stats.gave_up, 0, "no read should give up: {stats:?}");
    assert_eq!(disk.pending_faults(), 0, "the fault must have fired");
}

#[test]
fn exhausted_retries_surface_as_typed_io_error() {
    let disk = Arc::new(DiskSim::new(256));
    let c = collection_on(&disk);
    let file = c.store().file();

    // Nine failures outlive the default three attempts.
    disk.set_fault_plan(FaultPlan::new().with_fault(
        file,
        0,
        0,
        FaultKind::TransientRead { failures: 9 },
    ));
    disk.reset_fault_stats();
    let err = c.store().read_doc_direct(DocId::new(0)).unwrap_err();
    match err {
        Error::Io {
            ref file, attempts, ..
        } => {
            assert!(file.contains('c'), "error names the file: {err}");
            assert_eq!(attempts, disk.retry_policy().max_attempts);
        }
        other => panic!("expected Error::Io, got {other:?}"),
    }
    assert!(disk.fault_stats().gave_up >= 1);
}

#[test]
fn degraded_join_skips_unreadable_docs_and_reports_partial() {
    let disk = Arc::new(DiskSim::new(256));
    let c1 = collection_on(&disk);
    let c2 = SynthSpec::from_stats(CollectionStats::new(10, 12.0, 200), 6)
        .generate(Arc::clone(&disk), "c2")
        .unwrap();
    let spec = JoinSpec::new(&c1, &c2).with_sys(SystemParams {
        buffer_pages: 64,
        page_size: 256,
        alpha: 5.0,
    });
    let plan = FaultPlan::new().with_fault(
        c2.store().file(),
        0,
        0,
        FaultKind::TransientRead { failures: 9 },
    );

    // Strict mode: the unrecoverable page is a hard error.
    disk.set_fault_plan(plan.clone());
    assert!(matches!(hhnl::execute(&spec), Err(Error::Io { .. })));

    // Degraded mode: the same page becomes a counted skip. The strict run
    // spent the fault, so re-arm the plan.
    disk.set_fault_plan(plan);
    let got = hhnl::execute(&spec.with_degraded()).unwrap();
    assert_eq!(got.quality, ResultQuality::Partial);
    assert!(got.stats.skipped_docs >= 1, "{:?}", got.stats);
    assert_eq!(got.quality, got.stats.quality());
    disk.clear_fault_plan();
}

#[test]
fn degraded_hvnl_skips_unreadable_inverted_entries() {
    let disk = Arc::new(DiskSim::new(256));
    let c1 = collection_on(&disk);
    let c2 = SynthSpec::from_stats(CollectionStats::new(10, 12.0, 200), 6)
        .generate(Arc::clone(&disk), "c2")
        .unwrap();
    let inv1 = InvertedFile::build(Arc::clone(&disk), "c1", &c1).unwrap();
    let spec = JoinSpec::new(&c1, &c2).with_sys(SystemParams {
        buffer_pages: 64,
        page_size: 256,
        alpha: 5.0,
    });

    // Corrupt every postings page (the dictionary stays intact), so every
    // entry fetch fails its checksum.
    for page in 0..disk.num_pages(inv1.file()) {
        disk.flip_bit(inv1.file(), page, 8 * page + 3).unwrap();
    }

    let err = hvnl::execute(&spec, &inv1).unwrap_err();
    assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");

    let got = hvnl::execute(&spec.with_degraded(), &inv1).unwrap();
    assert_eq!(got.quality, ResultQuality::Partial);
    assert!(got.stats.skipped_entries >= 1, "{:?}", got.stats);
    // With no readable postings at all, no outer document finds a match.
    assert_eq!(got.result.num_pairs(), 0);
}

#[test]
fn integrated_replans_from_hvnl_to_hhnl_on_corrupt_inverted_file() {
    // Large inner, small outer, one selected outer document: the planner
    // picks HVNL (mirrors the chaos `replan-to-hhnl` scenario).
    let disk = Arc::new(DiskSim::new(256));
    let c1 = SynthSpec::from_stats(CollectionStats::new(400, 12.0, 150), 71)
        .generate(Arc::clone(&disk), "c1")
        .unwrap();
    let c2 = SynthSpec::from_stats(CollectionStats::new(40, 12.0, 150), 72)
        .generate(Arc::clone(&disk), "c2")
        .unwrap();
    let inv1 = InvertedFile::build(Arc::clone(&disk), "c1", &c1).unwrap();
    let inv2 = InvertedFile::build(Arc::clone(&disk), "c2", &c2).unwrap();
    let selected = [DocId::new(3)];
    let spec = JoinSpec::new(&c1, &c2)
        .with_sys(SystemParams {
            buffer_pages: 200,
            page_size: 256,
            alpha: 5.0,
        })
        .with_query(QueryParams {
            lambda: 5,
            delta: 1.0,
        })
        .with_outer_docs(OuterDocs::Selected(&selected));
    let baseline = hhnl::execute(&spec).unwrap().result;

    // Kill both vertical structures: the dictionary breaks HVNL's setup,
    // the postings break VVM's merge scan. Only HHNL can finish.
    disk.flip_bit(inv1.btree().file(), 0, 11).unwrap();
    disk.flip_bit(inv1.file(), 0, 23).unwrap();

    let got = integrated::execute(&spec, &inv1, &inv2, IoScenario::Dedicated).unwrap();
    assert_eq!(
        got.estimates.best(IoScenario::Dedicated).0,
        Algorithm::Hvnl,
        "the scenario must actually exercise a fallback"
    );
    assert_eq!(got.chosen, Algorithm::Hhnl);
    assert_eq!(got.outcome.result, baseline);
    assert_eq!(got.outcome.quality, ResultQuality::Full);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite of the chaos tentpole: flipping any single byte of any
    /// page of any file never panics any executor. Every run ends in
    /// `Ok` with quality/skip accounting that agrees, or in a typed error.
    #[test]
    fn prop_single_byte_flip_never_panics_any_executor(
        file_choice in 0u64..5,
        page_pick in 0u64..10_000,
        byte_pick in 0u64..10_000,
        bit in 0u64..8,
        degraded in proptest::bool::ANY,
    ) {
        let disk = Arc::new(DiskSim::new(256));
        let c1 = SynthSpec::from_stats(CollectionStats::new(24, 10.0, 120), 9)
            .generate(Arc::clone(&disk), "c1")
            .unwrap();
        let c2 = SynthSpec::from_stats(CollectionStats::new(12, 10.0, 120), 10)
            .generate(Arc::clone(&disk), "c2")
            .unwrap();
        let inv1 = InvertedFile::build(Arc::clone(&disk), "c1", &c1).unwrap();
        let inv2 = InvertedFile::build(Arc::clone(&disk), "c2", &c2).unwrap();

        let files = [
            c1.store().file(),
            c2.store().file(),
            inv1.file(),
            inv1.btree().file(),
            inv2.file(),
        ];
        let file = files[(file_choice % files.len() as u64) as usize];
        let page = page_pick % disk.num_pages(file);
        // Target byte within header ‖ payload; flip one of its bits.
        let byte = byte_pick % (textjoin::storage::PAGE_HEADER_BYTES as u64 + 256);
        disk.flip_bit(file, page, 8 * byte + bit).unwrap();

        let mut spec = JoinSpec::new(&c1, &c2)
            .with_sys(SystemParams { buffer_pages: 64, page_size: 256, alpha: 5.0 })
            .with_query(QueryParams { lambda: 3, delta: 1.0 });
        if degraded {
            spec = spec.with_degraded();
        }

        let runs = [
            hhnl::execute(&spec),
            hvnl::execute(&spec, &inv1),
            vvm::execute(&spec, &inv1, &inv2),
        ];
        for run in runs {
            match run {
                Ok(outcome) => {
                    prop_assert_eq!(outcome.quality, outcome.stats.quality());
                    let skipped = outcome.stats.skipped_docs + outcome.stats.skipped_entries;
                    prop_assert_eq!(
                        outcome.quality == ResultQuality::Partial,
                        skipped > 0,
                        "quality tag must agree with skip counters: {:?}",
                        outcome.stats
                    );
                    if skipped > 0 {
                        prop_assert!(degraded, "strict mode must never skip");
                    }
                }
                Err(Error::Corrupt(_) | Error::Io { .. } | Error::InsufficientMemory { .. }) => {}
                Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
            }
        }
    }
}
