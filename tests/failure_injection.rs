//! Failure injection: corrupted on-disk structures must surface as
//! `Error::Corrupt` (or another typed error), never as panics or silently
//! wrong results.

use std::sync::Arc;
use textjoin::common::Error;
use textjoin::invfile::BTreeFile;
use textjoin::prelude::*;
use textjoin::storage::DiskSim;

fn collection_on(disk: &Arc<DiskSim>) -> Collection {
    SynthSpec::from_stats(CollectionStats::new(40, 12.0, 200), 5)
        .generate(Arc::clone(disk), "c")
        .unwrap()
}

#[test]
fn corrupt_document_page_fails_scan_without_panicking() {
    let disk = Arc::new(DiskSim::new(256));
    let c = collection_on(&disk);
    // Overwrite the first data page with bytes that decode into
    // out-of-order cells.
    let file = c.store().file();
    let garbage = vec![0xFFu8; 255];
    disk.write_page(file, 0, &garbage).unwrap();

    let outcome: Vec<_> = c.store().scan().collect();
    assert!(
        outcome.iter().any(|r| matches!(r, Err(Error::Corrupt(_)))),
        "scan over a corrupted page must report corruption"
    );
}

#[test]
fn corrupt_document_read_direct_reports_corruption() {
    let disk = Arc::new(DiskSim::new(256));
    let c = collection_on(&disk);
    disk.write_page(c.store().file(), 0, &[0xAB; 250]).unwrap();
    let err = c.store().read_doc_direct(DocId::new(0)).unwrap_err();
    assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
}

#[test]
fn corrupt_btree_node_kind_is_reported() {
    let disk = Arc::new(DiskSim::new(256));
    let entries: Vec<_> = (0..200u32)
        .map(|i| {
            (
                TermId::new(i),
                textjoin::invfile::TermEntry {
                    ordinal: i,
                    doc_freq: 1,
                },
            )
        })
        .collect();
    let tree = BTreeFile::bulk_load(Arc::clone(&disk), "bt", &entries).unwrap();
    // Stamp an invalid node kind over page 0 (a leaf).
    let mut page = vec![0u8; 256];
    page[0] = 9; // neither leaf (0) nor internal (1)
    disk.write_page(tree.file(), 0, &page).unwrap();

    // Either the search path or the full load must hit the bad node.
    let search_err = (0..200u32)
        .map(|i| tree.search(TermId::new(i)))
        .find_map(|r| r.err());
    let load_err = tree.load_leaves().err();
    let err = search_err
        .or(load_err)
        .expect("corruption must be detected");
    assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
}

#[test]
fn executor_surfaces_storage_errors_as_results() {
    // A join over a corrupted inner collection returns Err, not panic.
    let disk = Arc::new(DiskSim::new(256));
    let c1 = collection_on(&disk);
    let c2 = SynthSpec::from_stats(CollectionStats::new(10, 12.0, 200), 6)
        .generate(Arc::clone(&disk), "c2")
        .unwrap();
    disk.write_page(c1.store().file(), 1, &[0xEE; 200]).unwrap();
    let spec = JoinSpec::new(&c1, &c2).with_sys(SystemParams {
        buffer_pages: 64,
        page_size: 256,
        alpha: 5.0,
    });
    let err = textjoin::core::hhnl::execute(&spec).unwrap_err();
    assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
}

#[test]
fn out_of_bounds_reads_are_typed_errors() {
    let disk = Arc::new(DiskSim::new(256));
    let f = disk.create_file("tiny").unwrap();
    disk.append_page(f, &[1, 2, 3]).unwrap();
    assert!(matches!(
        disk.read_page(f, 5).unwrap_err(),
        Error::PageOutOfBounds { .. }
    ));
    assert!(matches!(
        disk.read_run(f, 0, 9).unwrap_err(),
        Error::PageOutOfBounds { .. }
    ));
    assert!(matches!(
        disk.write_page(f, 7, &[0]).unwrap_err(),
        Error::PageOutOfBounds { .. }
    ));
}
