//! Invariants of the execution statistics the executors report — the
//! quantities EXPERIMENTS.md and the benches build on.

use std::sync::Arc;
use textjoin::core::{hhnl, hvnl, vvm};
use textjoin::prelude::*;
use textjoin::storage::DiskSim;

#[allow(clippy::type_complexity)]
fn fixture(
    seed: u64,
) -> (
    Arc<DiskSim>,
    Collection,
    Collection,
    InvertedFile,
    InvertedFile,
) {
    let disk = Arc::new(DiskSim::new(1024));
    let c1 = SynthSpec::from_stats(CollectionStats::new(120, 15.0, 600), seed)
        .generate(Arc::clone(&disk), "c1")
        .unwrap();
    let c2 = SynthSpec::from_stats(CollectionStats::new(80, 15.0, 600), seed + 1)
        .generate(Arc::clone(&disk), "c2")
        .unwrap();
    let inv1 = InvertedFile::build(Arc::clone(&disk), "c1", &c1).unwrap();
    let inv2 = InvertedFile::build(Arc::clone(&disk), "c2", &c2).unwrap();
    (disk, c1, c2, inv1, inv2)
}

#[test]
fn hhnl_io_decomposes_into_passes() {
    let (disk, c1, c2, _, _) = fixture(1);
    let spec = JoinSpec::new(&c1, &c2)
        .with_sys(SystemParams {
            buffer_pages: 16,
            page_size: 1024,
            alpha: 5.0,
        })
        .with_query(QueryParams {
            lambda: 3,
            delta: 1.0,
        });
    disk.reset_stats();
    disk.reset_head();
    let got = hhnl::execute(&spec).unwrap();
    let expect = c2.store().num_pages() + got.stats.passes * c1.store().num_pages();
    assert_eq!(got.stats.io.total_reads(), expect);
    // Cost never undercuts the page count and never exceeds the all-random
    // bound.
    assert!(got.stats.cost >= got.stats.io.total_reads() as f64);
    assert!(got.stats.cost <= got.stats.io.total_reads() as f64 * spec.sys.alpha);
}

#[test]
fn hvnl_fetch_accounting_is_consistent() {
    let (disk, c1, c2, inv1, _) = fixture(2);
    let spec = JoinSpec::new(&c1, &c2)
        .with_sys(SystemParams {
            buffer_pages: 64,
            page_size: 1024,
            alpha: 5.0,
        })
        .with_query(QueryParams {
            lambda: 3,
            delta: 1.0,
        });
    disk.reset_stats();
    disk.reset_head();
    let got = hvnl::execute(&spec, &inv1).unwrap();
    // Entries are either fetched on demand or preloaded by one sequential
    // scan (the X ≥ T1 case); in both paths resident entries get reused.
    assert!(
        got.stats.entry_fetches > 0 || got.stats.cache_hits > 0,
        "no entry activity at all: {:?}",
        got.stats
    );
    // Entry fetches each read at least one page beyond the B+tree and the
    // outer scan (unless the preload path took one sequential scan).
    let floor = inv1.btree().num_pages() + c2.store().num_pages();
    assert!(got.stats.io.total_reads() >= floor);
    assert_eq!(got.stats.passes, 1);
}

#[test]
fn vvm_io_is_passes_times_both_files() {
    let (disk, c1, c2, inv1, inv2) = fixture(3);
    let spec = JoinSpec::new(&c1, &c2)
        .with_sys(SystemParams {
            buffer_pages: 16,
            page_size: 1024,
            alpha: 5.0,
        })
        .with_query(QueryParams {
            lambda: 3,
            delta: 1.0,
        });
    disk.reset_stats();
    disk.reset_head();
    let got = vvm::execute(&spec, &inv1, &inv2).unwrap();
    assert_eq!(
        got.stats.io.total_reads(),
        got.stats.passes * (inv1.num_pages() + inv2.num_pages())
    );
}

#[test]
fn interference_multiplies_cost_but_not_reads() {
    let (disk, c1, c2, _, _) = fixture(4);
    let spec = JoinSpec::new(&c1, &c2)
        .with_sys(SystemParams {
            buffer_pages: 32,
            page_size: 1024,
            alpha: 5.0,
        })
        .with_query(QueryParams {
            lambda: 3,
            delta: 1.0,
        });

    disk.reset_stats();
    disk.reset_head();
    let calm = hhnl::execute(&spec).unwrap();

    disk.set_interference(true);
    disk.reset_stats();
    disk.reset_head();
    let noisy = hhnl::execute(&spec).unwrap();
    disk.set_interference(false);

    assert_eq!(
        calm.result, noisy.result,
        "interference must not change answers"
    );
    assert_eq!(calm.stats.io.total_reads(), noisy.stats.io.total_reads());
    assert!(
        (noisy.stats.cost - calm.stats.io.total_reads() as f64 * spec.sys.alpha).abs() < 1e-9,
        "all-random pricing must be exactly α per page"
    );
}

#[test]
fn derived_sizes_bundle_matches_individual_accessors() {
    let params = SystemParams::paper_base();
    for stats in [
        CollectionStats::wsj(),
        CollectionStats::fr(),
        CollectionStats::doe(),
    ] {
        let d = stats.derived(&params);
        assert_eq!(d.avg_doc_pages, stats.avg_doc_pages(params.page_size));
        assert_eq!(d.collection_pages, stats.collection_pages(params.page_size));
        assert_eq!(d.avg_entry_pages, stats.avg_entry_pages(params.page_size));
        assert_eq!(
            d.inverted_file_pages,
            stats.inverted_file_pages(params.page_size)
        );
        assert_eq!(d.btree_pages, stats.btree_pages(params.page_size));
    }
}

#[test]
fn measured_profile_matches_store_geometry() {
    // The statistics every cost estimate is built from must agree with the
    // bytes actually written.
    let (_disk, c1, _, inv1, _) = fixture(9);
    let stats = c1.profile().stats();
    assert_eq!(stats.num_docs, c1.store().num_docs());
    let expected_bytes = (stats.num_docs as f64 * stats.avg_terms_per_doc * 5.0).round() as u64;
    assert_eq!(c1.store().total_bytes(), expected_bytes);
    // The inverted file holds exactly the same cells (|d#| = |t#| → same
    // total size, the section 3 observation).
    assert_eq!(inv1.num_entries(), stats.distinct_terms);
}

#[test]
fn sim_ops_are_invariant_across_algorithms_and_orders() {
    let (_disk, c1, c2, inv1, inv2) = fixture(5);
    let spec = JoinSpec::new(&c1, &c2)
        .with_sys(SystemParams {
            buffer_pages: 64,
            page_size: 1024,
            alpha: 5.0,
        })
        .with_query(QueryParams {
            lambda: 3,
            delta: 1.0,
        });
    let ops: Vec<u64> = vec![
        hhnl::execute(&spec).unwrap().stats.sim_ops,
        hhnl::execute_backward(&spec).unwrap().stats.sim_ops,
        hvnl::execute(&spec, &inv1).unwrap().stats.sim_ops,
        vvm::execute(&spec, &inv1, &inv2).unwrap().stats.sim_ops,
    ];
    assert!(ops.windows(2).all(|w| w[0] == w[1]), "{ops:?}");
}
